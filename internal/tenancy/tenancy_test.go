package tenancy

import (
	"math"
	"strings"
	"testing"
	"time"
)

// twoCohorts is a canonical valid spec: a bursty critical cohort and
// a batch cohort splitting the aggregate 30/70.
func twoCohorts() *Spec {
	return &Spec{Cohorts: []Cohort{
		{
			ID: "interactive", RateFraction: 0.3, Class: ClassCritical,
			Deadline: Duration(250 * time.Millisecond),
			Arrival:  ArrivalSpec{Process: ProcessGamma, CV: 3},
			Apps:     []AppShare{{Name: "FaceDet320", Weight: 2}, {Name: "Digit500"}},
		},
		{ID: "analytics", RateFraction: 0.7, Class: ClassBatch},
	}}
}

func TestValidateAccepts(t *testing.T) {
	if err := twoCohorts().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestValidateErrorsCarryCohortID pins the validation contract of the
// satellite task: malformed cohort fields fail with the cohort's id in
// the message, the campaign trace loader's field-context convention.
func TestValidateErrorsCarryCohortID(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"fractions must sum to 1", func(s *Spec) { s.Cohorts[1].RateFraction = 0.5 }, "sum to 0.8"},
		{"unknown class", func(s *Spec) { s.Cohorts[1].Class = "gold" }, `cohort "analytics": unknown class "gold"`},
		{"missing class", func(s *Spec) { s.Cohorts[1].Class = "" }, `cohort "analytics": cohort has no class`},
		{"cv must be positive", func(s *Spec) { s.Cohorts[0].Arrival.CV = -2 }, `cohort "interactive": gamma arrivals need a positive cv`},
		{"cv bounded", func(s *Spec) { s.Cohorts[0].Arrival.CV = 1e6 }, `cohort "interactive": cv 1e+06 outside`},
		{"poisson takes no cv", func(s *Spec) { s.Cohorts[1].Arrival.CV = 2 }, `cohort "analytics": poisson arrivals have cv 1`},
		{"unknown process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "pareto" }, `cohort "interactive": unknown arrival process "pareto"`},
		{"critical needs deadline", func(s *Spec) { s.Cohorts[0].Deadline = 0 }, `cohort "interactive": critical class needs a positive deadline`},
		{"batch takes no deadline", func(s *Spec) { s.Cohorts[1].Deadline = Duration(time.Second) }, `cohort "analytics": batch class does not take a deadline`},
		{"non-positive fraction", func(s *Spec) { s.Cohorts[0].RateFraction = 0 }, `cohort "interactive": rate_fraction 0 outside (0, 1]`},
		{"schedule window duration", func(s *Spec) {
			s.Cohorts[0].Arrival.Schedule = []Window{{Duration: 0, Factor: 2}}
		}, `cohort "interactive": schedule window 0 needs a positive duration`},
		{"schedule window factor", func(s *Spec) {
			s.Cohorts[0].Arrival.Schedule = []Window{{Duration: Duration(time.Second), Factor: -1}}
		}, `cohort "interactive": schedule window 0 needs a positive factor`},
		{"app mix name", func(s *Spec) { s.Cohorts[0].Apps = []AppShare{{Name: ""}} }, `cohort "interactive": app mix entry 0 has no name`},
		{"negative weight", func(s *Spec) { s.Cohorts[0].Apps[0].Weight = -1 }, `cohort "interactive": app "FaceDet320" has negative weight`},
		{"duplicate id", func(s *Spec) { s.Cohorts[1].ID = "interactive" }, `duplicate cohort id "interactive"`},
		{"missing id", func(s *Spec) { s.Cohorts[1].ID = "" }, "cohort 1 has no id"},
	}
	for _, tc := range cases {
		s := twoCohorts()
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil || !strings.Contains(err.Error(), "at least one cohort") {
		t.Errorf("nil spec: got %v", err)
	}
}

func TestClasses(t *testing.T) {
	got := twoCohorts().Classes()
	if len(got) != 2 || got[0] != ClassBatch || got[1] != ClassCritical {
		t.Fatalf("Classes() = %v, want [batch critical]", got)
	}
}

// collect drains a stream.
func collect(t *testing.T, c StreamConfig) []Arrival {
	t.Helper()
	s, err := NewStream(c)
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	var out []Arrival
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func streamCfg() StreamConfig {
	return StreamConfig{Spec: twoCohorts(), RatePerSec: 500, Horizon: 60 * time.Second, Seed: 2021, PoolSize: 5}
}

// TestStreamMonotoneAndInHorizon pins the merged-stream contract:
// non-decreasing timestamps inside [0, horizon), cohorts and app
// indices in range.
func TestStreamMonotoneAndInHorizon(t *testing.T) {
	cfg := streamCfg()
	all := collect(t, cfg)
	if len(all) == 0 {
		t.Fatal("empty stream")
	}
	var prev time.Duration
	for i, a := range all {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before predecessor %v", i, a.At, prev)
		}
		prev = a.At
		if a.At < 0 || a.At >= cfg.Horizon {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, a.At, cfg.Horizon)
		}
		switch a.Cohort {
		case 0:
			if a.App < 0 || a.App > 1 {
				t.Fatalf("arrival %d: mix index %d out of range", i, a.App)
			}
		case 1:
			if a.App < 0 || a.App >= cfg.PoolSize {
				t.Fatalf("arrival %d: pool index %d out of range", i, a.App)
			}
		default:
			t.Fatalf("arrival %d: cohort %d out of range", i, a.Cohort)
		}
	}
}

// TestStreamDeterministic pins that one seed fixes the realization.
func TestStreamDeterministic(t *testing.T) {
	a := collect(t, streamCfg())
	b := collect(t, streamCfg())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestShardDealExact pins the sharded deal: the union of the per-shard
// streams, in phase order round-robin, is exactly the unsharded
// stream — same timestamps, cohorts and app draws — so per-cohort
// request counts split exactly.
func TestShardDealExact(t *testing.T) {
	cfg := streamCfg()
	whole := collect(t, cfg)
	for _, n := range []int{2, 3, 5} {
		shards := make([][]Arrival, n)
		total := 0
		for p := range n {
			c := cfg
			c.Stride, c.Phase = n, p
			shards[p] = collect(t, c)
			total += len(shards[p])
		}
		if total != len(whole) {
			t.Fatalf("%d shards: %d arrivals, want %d", n, total, len(whole))
		}
		for i, want := range whole {
			got := shards[i%n][i/n]
			if got != want {
				t.Fatalf("%d shards: merged index %d: %+v, want %+v", n, i, got, want)
			}
		}
	}
}

// TestRateFractionsRespected checks each cohort's share of the merged
// stream against its declared fraction (law of large numbers bound).
func TestRateFractionsRespected(t *testing.T) {
	cfg := streamCfg()
	all := collect(t, cfg)
	counts := make([]int, len(cfg.Spec.Cohorts))
	for _, a := range all {
		counts[a.Cohort]++
	}
	for i, c := range cfg.Spec.Cohorts {
		got := float64(counts[i]) / float64(len(all))
		if math.Abs(got-c.RateFraction) > 0.05 {
			t.Errorf("cohort %q: fraction %.3f, want %.3f±0.05 (%d of %d)",
				c.ID, got, c.RateFraction, counts[i], len(all))
		}
	}
	// The aggregate count should be near rate × horizon.
	want := cfg.RatePerSec * cfg.Horizon.Seconds()
	if got := float64(len(all)); math.Abs(got-want)/want > 0.1 {
		t.Errorf("aggregate %v arrivals, want about %v", got, want)
	}
}

// empiricalCV measures mean and CV of one cohort's inter-arrival gaps
// under the given process.
func empiricalCV(t *testing.T, process string, cv float64) (mean, gotCV float64) {
	t.Helper()
	spec := &Spec{Cohorts: []Cohort{{
		ID: "only", RateFraction: 1, Class: ClassBatch,
		Arrival: ArrivalSpec{Process: process, CV: cv},
	}}}
	if process == ProcessPoisson {
		spec.Cohorts[0].Arrival.CV = 0
	}
	all := collect(t, StreamConfig{Spec: spec, RatePerSec: 1000, Horizon: 100 * time.Second, Seed: 7, PoolSize: 3})
	if len(all) < 10000 {
		t.Fatalf("%s cv=%v: only %d arrivals", process, cv, len(all))
	}
	var prev time.Duration
	var sum, sumSq float64
	n := 0
	for _, a := range all {
		gap := (a.At - prev).Seconds()
		prev = a.At
		sum += gap
		sumSq += gap * gap
		n++
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	return mean, math.Sqrt(variance) / mean
}

// TestGapCVMatchesSpec is the property test of the satellite task: the
// empirical CV of gamma and weibull gap processes lands within
// tolerance of the declared CV, and the mean gap matches the rate.
func TestGapCVMatchesSpec(t *testing.T) {
	cases := []struct {
		process string
		cv      float64
	}{
		{ProcessPoisson, 1},
		{ProcessGamma, 0.5},
		{ProcessGamma, 2},
		{ProcessGamma, 4},
		{ProcessWeibull, 0.7},
		{ProcessWeibull, 2},
		{ProcessWeibull, 3},
	}
	for _, tc := range cases {
		mean, cv := empiricalCV(t, tc.process, tc.cv)
		if math.Abs(mean-0.001)/0.001 > 0.1 {
			t.Errorf("%s cv=%v: mean gap %.6fs, want ~0.001s", tc.process, tc.cv, mean)
		}
		if math.Abs(cv-tc.cv)/tc.cv > 0.15 {
			t.Errorf("%s: empirical CV %.3f, want %.3f±15%%", tc.process, cv, tc.cv)
		}
	}
}

// TestScheduleModulatesRate checks the per-window rate schedule: a
// 4×/0.25× two-window cycle should put most arrivals in the hot
// windows.
func TestScheduleModulatesRate(t *testing.T) {
	spec := &Spec{Cohorts: []Cohort{{
		ID: "diurnal", RateFraction: 1, Class: ClassBatch,
		Arrival: ArrivalSpec{Schedule: []Window{
			{Duration: Duration(5 * time.Second), Factor: 4},
			{Duration: Duration(5 * time.Second), Factor: 0.25},
		}},
	}}}
	all := collect(t, StreamConfig{Spec: spec, RatePerSec: 200, Horizon: 60 * time.Second, Seed: 3, PoolSize: 2})
	hot, cold := 0, 0
	for _, a := range all {
		if a.At%(10*time.Second) < 5*time.Second {
			hot++
		} else {
			cold++
		}
	}
	if hot <= 4*cold {
		t.Fatalf("hot windows got %d arrivals vs %d cold; want >4x skew", hot, cold)
	}
}

// TestWeibullShape pins the CV→shape inversion at known points:
// CV 1 is the exponential (shape 1).
func TestWeibullShape(t *testing.T) {
	if k := weibullShape(1); math.Abs(k-1) > 1e-6 {
		t.Errorf("weibullShape(1) = %v, want 1", k)
	}
	// Round-trip: the solved shape's analytic CV matches the input.
	for _, cv := range []float64{0.3, 0.8, 1.5, 3, 10} {
		k := weibullShape(cv)
		g1 := math.Gamma(1 + 1/k)
		got := math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
		if math.Abs(got-cv)/cv > 1e-6 {
			t.Errorf("weibullShape(%v) = %v round-trips to CV %v", cv, k, got)
		}
	}
}

func TestNewStreamRejects(t *testing.T) {
	base := streamCfg()
	cases := []struct {
		name   string
		mutate func(*StreamConfig)
		want   string
	}{
		{"bad spec", func(c *StreamConfig) { c.Spec = &Spec{} }, "at least one cohort"},
		{"bad rate", func(c *StreamConfig) { c.RatePerSec = 0 }, "non-positive aggregate rate"},
		{"bad horizon", func(c *StreamConfig) { c.Horizon = 0 }, "non-positive horizon"},
		{"bad phase", func(c *StreamConfig) { c.Stride, c.Phase = 2, 2 }, "shard phase"},
		{"empty pool", func(c *StreamConfig) { c.PoolSize = 0 }, `cohort "analytics" draws from the application pool`},
	}
	for _, tc := range cases {
		c := base
		tc.mutate(&c)
		_, err := NewStream(c)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}
