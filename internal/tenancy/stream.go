package tenancy

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival is one request of the merged stream: when it arrives, which
// cohort issued it, and which application it runs — App indexes the
// cohort's mix when the cohort declares one, and the run's shared
// application pool otherwise.
type Arrival struct {
	At     time.Duration
	Cohort int
	App    int
}

// StreamConfig parameterises one merged-stream generator.
type StreamConfig struct {
	// Spec is the validated workload declaration.
	Spec *Spec
	// RatePerSec is the aggregate arrival rate the cohorts' fractions
	// split.
	RatePerSec float64
	// Horizon bounds the stream: each cohort stops at its first draw
	// at or past it.
	Horizon time.Duration
	// Seed is the parent seed; every cohort derives its own
	// deterministic sub-seed from it, so one seed fixes the whole
	// merged realization.
	Seed int64
	// PoolSize is the shared application pool's size, drawn from by
	// cohorts without an explicit mix.
	PoolSize int
	// Stride/Phase deal the merged stream for sharded serving: every
	// cohort's full sequence is generated, but only arrivals whose
	// merged index is congruent to Phase mod Stride are yielded
	// (Stride 0 keeps every arrival). The shard fleet collectively
	// replays the identical merged realization the unsharded engine
	// injects, with O(cohorts) state per shard.
	Stride, Phase int
}

// Stream generates the merged arrival stream lazily: per-cohort
// generators hold one look-ahead arrival each and Next pops the
// earliest (ties toward the lower cohort index), so a million-request
// cell holds O(cohorts) arrival state. The sequence is a pure function
// of the config.
type Stream struct {
	gens   []*cohortGen
	stride int
	phase  int
	idx    int
}

// cohortGen is one cohort's lazy arrival source.
type cohortGen struct {
	rng     *rand.Rand
	gap     func(*rand.Rand) float64 // normalized gap, mean 1
	meanGap float64                  // seconds at factor 1
	mix     []float64                // cumulative weights; nil draws from the pool
	pool    int
	sched   []Window
	period  time.Duration // schedule cycle length
	horizon time.Duration

	t    time.Duration
	next Arrival
	done bool
}

// NewStream builds the generator. The spec must already be valid;
// NewStream re-validates and additionally checks the run-scoped
// parameters a spec cannot know (rate, horizon, pool size).
func NewStream(c StreamConfig) (*Stream, error) {
	if err := c.Spec.Validate(); err != nil {
		return nil, err
	}
	if c.RatePerSec <= 0 {
		return nil, fmt.Errorf("tenancy: non-positive aggregate rate %v", c.RatePerSec)
	}
	if c.Horizon <= 0 {
		return nil, fmt.Errorf("tenancy: non-positive horizon %v", c.Horizon)
	}
	if c.Stride < 0 || (c.Stride > 0 && (c.Phase < 0 || c.Phase >= c.Stride)) {
		return nil, fmt.Errorf("tenancy: shard phase %d outside [0, %d)", c.Phase, c.Stride)
	}
	s := &Stream{gens: make([]*cohortGen, len(c.Spec.Cohorts)), stride: c.Stride, phase: c.Phase}
	for i := range c.Spec.Cohorts {
		co := &c.Spec.Cohorts[i]
		g := &cohortGen{
			rng:     rand.New(rand.NewSource(cohortSeed(c.Seed, i))),
			meanGap: 1 / (co.RateFraction * c.RatePerSec),
			pool:    c.PoolSize,
			sched:   co.Arrival.Schedule,
			horizon: c.Horizon,
		}
		for _, w := range g.sched {
			g.period += time.Duration(w.Duration)
		}
		switch co.Arrival.Process {
		case "", ProcessPoisson:
			g.gap = func(r *rand.Rand) float64 { return r.ExpFloat64() }
		case ProcessGamma:
			shape := 1 / (co.Arrival.CV * co.Arrival.CV)
			g.gap = func(r *rand.Rand) float64 { return gammaNorm(r, shape) }
		case ProcessWeibull:
			shape := weibullShape(co.Arrival.CV)
			scale := 1 / math.Gamma(1+1/shape)
			g.gap = func(r *rand.Rand) float64 { return weibullNorm(r, shape, scale) }
		}
		if len(co.Apps) > 0 {
			g.mix = make([]float64, len(co.Apps))
			cum := 0.0
			for j, a := range co.Apps {
				w := a.Weight
				if w == 0 {
					w = 1
				}
				cum += w
				g.mix[j] = cum
			}
			if cum <= 0 {
				return nil, fmt.Errorf("tenancy: cohort %q: app mix has zero total weight", co.ID)
			}
		} else if c.PoolSize <= 0 {
			return nil, fmt.Errorf("tenancy: cohort %q draws from the application pool but the pool is empty", co.ID)
		}
		g.advance(i)
		s.gens[i] = g
	}
	return s, nil
}

// Next yields the merged stream's next kept arrival in timestamp
// order; ok=false at end of stream.
func (s *Stream) Next() (Arrival, bool) {
	for {
		min := -1
		for i, g := range s.gens {
			if g.done {
				continue
			}
			if min < 0 || g.next.At < s.gens[min].next.At {
				min = i
			}
		}
		if min < 0 {
			return Arrival{}, false
		}
		a := s.gens[min].next
		s.gens[min].advance(min)
		idx := s.idx
		s.idx++
		if s.stride == 0 || idx%s.stride == s.phase {
			return a, true
		}
	}
}

// advance draws the cohort's next arrival: a gap (time-dilated by the
// schedule factor at the draw's start), then the application. A draw
// at or past the horizon ends the cohort, consuming only its gap —
// the same end-of-stream discipline the Poisson serving source uses.
func (g *cohortGen) advance(cohort int) {
	gap := g.gap(g.rng) * g.meanGap / g.factor()
	g.t += time.Duration(gap * float64(time.Second))
	if g.t >= g.horizon {
		g.done = true
		return
	}
	a := Arrival{At: g.t, Cohort: cohort}
	switch {
	case len(g.mix) == 1:
		a.App = 0
	case len(g.mix) > 1:
		u := g.rng.Float64() * g.mix[len(g.mix)-1]
		for j, cum := range g.mix {
			if u < cum {
				a.App = j
				break
			}
			a.App = j // u == total weight rounds into the last entry
		}
	default:
		a.App = g.rng.Intn(g.pool)
	}
	g.next = a
}

// factor is the schedule's rate multiplier at the cohort's current
// clock; the windows cycle over the horizon. 1 without a schedule.
func (g *cohortGen) factor() float64 {
	if len(g.sched) == 0 {
		return 1
	}
	off := g.t % g.period
	for _, w := range g.sched {
		if off < time.Duration(w.Duration) {
			return w.Factor
		}
		off -= time.Duration(w.Duration)
	}
	return g.sched[len(g.sched)-1].Factor
}

// cohortSeed derives cohort i's RNG seed from the parent seed with a
// splitmix64 finalizer, so adjacent seeds and adjacent cohorts still
// get decorrelated streams.
func cohortSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// gammaNorm draws a mean-1 gamma variate with the given shape
// (Marsaglia–Tsang; shapes below 1 use the U^(1/shape) boost). The
// gap CV is 1/sqrt(shape).
func gammaNorm(rng *rand.Rand, shape float64) float64 {
	boost, k := 1.0, shape
	if k < 1 {
		boost = math.Pow(rng.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			// Gamma(shape, 1) sample scaled to mean 1.
			return boost * d * v / shape
		}
	}
}

// weibullNorm draws a mean-1 Weibull variate by inverse CDF.
func weibullNorm(rng *rand.Rand, shape, scale float64) float64 {
	return scale * math.Pow(-math.Log1p(-rng.Float64()), 1/shape)
}

// weibullShape solves the Weibull shape whose gap CV matches the
// spec: CV² + 1 = Γ(1+2/k) / Γ(1+1/k)², which is strictly decreasing
// in k, so a bisection converges.
func weibullShape(cv float64) float64 {
	target := cv*cv + 1
	f := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		return math.Gamma(1+2/k) / (g1 * g1)
	}
	lo, hi := 0.02, 200.0
	for range 200 {
		mid := (lo + hi) / 2
		if f(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
