package tenancy

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzStream drives the merged-stream generator with fuzzer-chosen
// cohort counts, fractions, processes, CVs and seeds, and checks the
// invariants every realization must hold: monotone non-decreasing
// merged timestamps inside the horizon, in-range cohort/app indices,
// and an exact stride deal — the union of the per-shard streams in
// round-robin phase order reproduces the unsharded stream
// arrival-for-arrival, so per-cohort request counts split exactly.
func FuzzStream(f *testing.F) {
	seed := func(vals ...uint64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], v)
		}
		return b
	}
	f.Add(seed(2, 2021, 3, 50, 1, 200))
	f.Add(seed(3, 7, 0, 0, 2, 30, 1, 400))
	f.Add(seed(1, 1<<40, 2, 10))
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() uint64 {
			if len(data) < 8 {
				return 0
			}
			v := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]
			return v
		}
		n := int(next()%4) + 1
		rngSeed := int64(next())
		spec := &Spec{}
		for i := range n {
			c := Cohort{ID: string(rune('a' + i)), RateFraction: 1 / float64(n), Class: ClassBatch}
			switch next() % 3 {
			case 1:
				c.Arrival = ArrivalSpec{Process: ProcessGamma, CV: 0.25 + float64(next()%16)/4}
			case 2:
				c.Arrival = ArrivalSpec{Process: ProcessWeibull, CV: 0.25 + float64(next()%16)/4}
			}
			if next()%2 == 1 {
				c.Arrival.Schedule = []Window{
					{Duration: Duration(time.Second), Factor: 3},
					{Duration: Duration(2 * time.Second), Factor: 0.5},
				}
			}
			spec.Cohorts = append(spec.Cohorts, c)
		}
		// Rounding the fractions must not trip validation.
		spec.Cohorts[n-1].RateFraction = 1
		for i := 0; i < n-1; i++ {
			spec.Cohorts[n-1].RateFraction -= spec.Cohorts[i].RateFraction
		}
		if spec.Cohorts[n-1].RateFraction <= 0 {
			return
		}
		cfg := StreamConfig{
			Spec: spec, RatePerSec: 100 + float64(next()%400),
			Horizon: 5 * time.Second, Seed: rngSeed, PoolSize: 3,
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatalf("NewStream: %v", err)
		}
		var whole []Arrival
		var prev time.Duration
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.At < prev {
				t.Fatalf("arrival %d at %v before predecessor %v", len(whole), a.At, prev)
			}
			prev = a.At
			if a.At < 0 || a.At >= cfg.Horizon {
				t.Fatalf("arrival at %v outside [0, %v)", a.At, cfg.Horizon)
			}
			if a.Cohort < 0 || a.Cohort >= n {
				t.Fatalf("cohort %d out of range", a.Cohort)
			}
			if a.App < 0 || a.App >= cfg.PoolSize {
				t.Fatalf("pool index %d out of range", a.App)
			}
			whole = append(whole, a)
			if len(whole) > 1<<16 {
				t.Fatal("runaway stream")
			}
		}
		stride := int(next()%3) + 2
		total := 0
		for p := range stride {
			c := cfg
			c.Stride, c.Phase = stride, p
			sh, err := NewStream(c)
			if err != nil {
				t.Fatalf("shard %d: %v", p, err)
			}
			for i := p; ; i += stride {
				a, ok := sh.Next()
				if !ok {
					break
				}
				if i >= len(whole) {
					t.Fatalf("shard %d/%d yields extra arrival %+v", p, stride, a)
				}
				if a != whole[i] {
					t.Fatalf("shard %d/%d: merged index %d: %+v, want %+v", p, stride, i, a, whole[i])
				}
				total++
			}
		}
		if total != len(whole) {
			t.Fatalf("shards yield %d arrivals, unsharded %d", total, len(whole))
		}
	})
}
