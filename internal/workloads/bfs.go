package workloads

import (
	"fmt"
	"math/rand"
)

// DenseGraph is an adjacency-matrix graph — the representation whose
// O(n^2) frontier scans match the Section 4.4 BFS study (the Alveo U50
// port could not hold graphs beyond 5,000 nodes, consistent with an
// adjacency-matrix layout).
type DenseGraph struct {
	N   int
	adj []bool
}

// NewDenseGraph allocates an empty graph on n nodes.
func NewDenseGraph(n int) *DenseGraph {
	return &DenseGraph{N: n, adj: make([]bool, n*n)}
}

// AddEdge inserts an undirected edge.
func (g *DenseGraph) AddEdge(u, v int) {
	g.adj[u*g.N+v] = true
	g.adj[v*g.N+u] = true
}

// HasEdge reports whether u-v is an edge.
func (g *DenseGraph) HasEdge(u, v int) bool { return g.adj[u*g.N+v] }

// GenerateGraph builds a connected random graph: a Hamiltonian path
// for connectivity plus random extra edges at density p.
func GenerateGraph(rng *rand.Rand, n int, p float64) *DenseGraph {
	g := NewDenseGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i)
	}
	extra := int(p * float64(n) * float64(n) / 2)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// BFS computes hop distances from src, scanning each frontier node's
// full adjacency row (the kernel the FPGA port implements).
func (g *DenseGraph) BFS(src int) ([]int, error) {
	if src < 0 || src >= g.N {
		return nil, fmt.Errorf("workloads: BFS source %d out of range [0,%d)", src, g.N)
	}
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for level := 1; len(frontier) > 0; level++ {
		var next []int
		for _, u := range frontier {
			row := g.adj[u*g.N : (u+1)*g.N]
			for v, edge := range row {
				if edge && dist[v] < 0 {
					dist[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, nil
}

// CSRGraph is the sparse counterpart used by the reference check.
type CSRGraph struct {
	N      int
	RowPtr []int
	Adj    []int
}

// ToCSR converts the dense graph.
func (g *DenseGraph) ToCSR() *CSRGraph {
	c := &CSRGraph{N: g.N, RowPtr: make([]int, g.N+1)}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if g.HasEdge(u, v) {
				c.Adj = append(c.Adj, v)
			}
		}
		c.RowPtr[u+1] = len(c.Adj)
	}
	return c
}

// BFS on the CSR form, used as the independent reference.
func (c *CSRGraph) BFS(src int) ([]int, error) {
	if src < 0 || src >= c.N {
		return nil, fmt.Errorf("workloads: BFS source %d out of range [0,%d)", src, c.N)
	}
	dist := make([]int, c.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for k := c.RowPtr[u]; k < c.RowPtr[u+1]; k++ {
			v := c.Adj[k]
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, nil
}
