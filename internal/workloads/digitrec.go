package workloads

import (
	"math/bits"
	"math/rand"
)

// Digit is a 7x7 binarised glyph packed into 49 bits, exactly the
// representation the Rosetta digit-recognition benchmark uses.
type Digit uint64

// digitBits is the glyph size in bits.
const digitBits = 49

// LabeledDigit pairs a glyph with its class.
type LabeledDigit struct {
	Glyph Digit
	Label int
}

// digitGlyphs are 7x7 prototypes of the ten digits ('#' = ink).
var digitGlyphs = [10][7]string{
	{" ##### ", "##   ##", "##   ##", "##   ##", "##   ##", "##   ##", " ##### "},
	{"   ##  ", "  ###  ", "   ##  ", "   ##  ", "   ##  ", "   ##  ", " ######"},
	{" ##### ", "##   ##", "     ##", "   ### ", "  ##   ", " ##    ", "#######"},
	{" ##### ", "##   ##", "     ##", "  #### ", "     ##", "##   ##", " ##### "},
	{"##  ## ", "##  ## ", "##  ## ", "#######", "    ## ", "    ## ", "    ## "},
	{"#######", "##     ", "###### ", "     ##", "     ##", "##   ##", " ##### "},
	{" ##### ", "##     ", "##     ", "###### ", "##   ##", "##   ##", " ##### "},
	{"#######", "    ## ", "   ##  ", "  ##   ", "  ##   ", "  ##   ", "  ##   "},
	{" ##### ", "##   ##", "##   ##", " ##### ", "##   ##", "##   ##", " ##### "},
	{" ##### ", "##   ##", "##   ##", " ######", "     ##", "     ##", " ##### "},
}

// PrototypeDigit returns the clean glyph of a digit class.
func PrototypeDigit(label int) Digit {
	var g Digit
	rows := digitGlyphs[label%10]
	bit := 0
	for _, row := range rows {
		for _, c := range row {
			if c == '#' {
				g |= 1 << bit
			}
			bit++
		}
	}
	return g
}

// NoisyDigit flips nFlips random bits of the prototype, producing a
// synthetic handwritten sample (MNIST-like variation).
func NoisyDigit(rng *rand.Rand, label, nFlips int) Digit {
	g := PrototypeDigit(label)
	for i := 0; i < nFlips; i++ {
		g ^= 1 << rng.Intn(digitBits)
	}
	return g
}

// GenerateDigitSet builds a labeled sample set with noise.
func GenerateDigitSet(rng *rand.Rand, n, maxFlips int) []LabeledDigit {
	out := make([]LabeledDigit, n)
	for i := range out {
		label := rng.Intn(10)
		out[i] = LabeledDigit{Glyph: NoisyDigit(rng, label, rng.Intn(maxFlips+1)), Label: label}
	}
	return out
}

// HammingDistance counts differing bits between two glyphs — the
// KNN distance metric, and the operation the hardware kernel
// (KNL_HW_DR*) pipelines.
func HammingDistance(a, b Digit) int {
	return bits.OnesCount64(uint64(a^b) & ((1 << digitBits) - 1))
}

// KNNClassifier is the digit-recognition model: k-nearest neighbours
// under Hamming distance over a training set.
type KNNClassifier struct {
	K        int
	Training []LabeledDigit
}

// NewKNNClassifier builds a classifier with a synthetic training set
// of n samples per class.
func NewKNNClassifier(rng *rand.Rand, k, perClass, maxFlips int) *KNNClassifier {
	c := &KNNClassifier{K: k}
	for label := 0; label < 10; label++ {
		c.Training = append(c.Training, LabeledDigit{Glyph: PrototypeDigit(label), Label: label})
		for i := 1; i < perClass; i++ {
			c.Training = append(c.Training, LabeledDigit{
				Glyph: NoisyDigit(rng, label, rng.Intn(maxFlips+1)),
				Label: label,
			})
		}
	}
	return c
}

// Classify returns the majority label of the k nearest training
// samples (ties break toward the smaller distance sum).
func (c *KNNClassifier) Classify(g Digit) int {
	k := c.K
	if k < 1 {
		k = 1
	}
	if k > len(c.Training) {
		k = len(c.Training)
	}
	// Selection of the k smallest distances without sorting the set:
	// the training sets are small enough that a simple insertion
	// buffer matches the Rosetta implementation's structure.
	type cand struct {
		dist  int
		label int
	}
	best := make([]cand, 0, k)
	for _, s := range c.Training {
		d := HammingDistance(g, s.Glyph)
		if len(best) < k {
			best = append(best, cand{d, s.Label})
			for i := len(best) - 1; i > 0 && best[i].dist < best[i-1].dist; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			continue
		}
		if d >= best[k-1].dist {
			continue
		}
		best[k-1] = cand{d, s.Label}
		for i := k - 1; i > 0 && best[i].dist < best[i-1].dist; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
	}
	votes := [10]int{}
	for _, b := range best {
		votes[b.label]++
	}
	top, topVotes := 0, -1
	for label, v := range votes {
		if v > topVotes {
			top, topVotes = label, v
		}
	}
	return top
}

// Accuracy classifies every test sample and reports the hit fraction.
func (c *KNNClassifier) Accuracy(tests []LabeledDigit) float64 {
	if len(tests) == 0 {
		return 0
	}
	hits := 0
	for _, tc := range tests {
		if c.Classify(tc.Glyph) == tc.Label {
			hits++
		}
	}
	return float64(hits) / float64(len(tests))
}
