package workloads

import (
	"reflect"
	"testing"

	"xartrek/internal/mir"
)

// kernelBuilders names every workload kernel for the differential
// test: the compiled register-file engine must be bit-for-bit
// indistinguishable from the legacy tree-walking evaluator on each.
func kernelBuilders() map[string]func(*mir.Module, string) (*mir.Function, error) {
	return map[string]func(*mir.Module, string) (*mir.Function, error){
		"facedetect": buildFaceDetectKernel,
		"digitrec":   buildDigitRecKernel,
		"cg":         buildCGKernel,
		"bfs":        buildBFSKernel,
		"mg":         buildMGKernel,
	}
}

// seedArena fills the kernel's input region with a deterministic
// pseudo-random pattern so loads see non-trivial data (the arena is
// otherwise zero and every kernel would degenerate to constants).
func seedArena(t *testing.T, ip *mir.Interp) uint64 {
	t.Helper()
	const words = kernelArenaMask + 1 + 8
	base, err := ip.Mem.Alloc(words * 8)
	if err != nil {
		t.Fatal(err)
	}
	state := uint64(0x9e3779b97f4a7c15)
	for k := 0; k < words; k++ {
		// xorshift64 keeps the pattern platform-independent.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if err := ip.Mem.Store(base+uint64(8*k), 8, state); err != nil {
			t.Fatal(err)
		}
	}
	return base
}

// runKernel executes one freshly built kernel for iters trips on the
// selected engine and returns the raw result plus statistics.
func runKernel(t *testing.T, build func(*mir.Module, string) (*mir.Function, error), legacy bool, iters int64) (uint64, mir.ExecStats) {
	t.Helper()
	m := mir.NewModule("diff")
	fn, err := build(m, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	ip := mir.NewInterp(1 << 16)
	ip.Legacy = legacy
	base := seedArena(t, ip)
	got, err := ip.Run(fn, base, base, uint64(iters))
	if err != nil {
		t.Fatal(err)
	}
	return got, ip.Stats()
}

func TestCompiledEngineMatchesLegacyOnAllKernels(t *testing.T) {
	for name, build := range kernelBuilders() {
		t.Run(name, func(t *testing.T) {
			for _, iters := range []int64{1, 64, 1500} {
				legacyRes, legacyStats := runKernel(t, build, true, iters)
				compiledRes, compiledStats := runKernel(t, build, false, iters)
				if legacyRes != compiledRes {
					t.Fatalf("iters=%d: result mismatch: legacy=%#x compiled=%#x",
						iters, legacyRes, compiledRes)
				}
				if legacyStats.Steps != compiledStats.Steps {
					t.Fatalf("iters=%d: steps mismatch: legacy=%d compiled=%d",
						iters, legacyStats.Steps, compiledStats.Steps)
				}
				if !reflect.DeepEqual(legacyStats.Ops, compiledStats.Ops) {
					t.Fatalf("iters=%d: op mix mismatch:\nlegacy:   %v\ncompiled: %v",
						iters, legacyStats.Ops, compiledStats.Ops)
				}
			}
		})
	}
}

// TestCompiledEngineMatchesLegacyThroughMain drives the full
// application shape — main's alloca and the call into the kernel —
// through both engines.
func TestCompiledEngineMatchesLegacyThroughMain(t *testing.T) {
	for name, build := range kernelBuilders() {
		t.Run(name, func(t *testing.T) {
			run := func(legacy bool) (uint64, mir.ExecStats) {
				m := mir.NewModule("diff")
				fn, err := build(m, "kernel")
				if err != nil {
					t.Fatal(err)
				}
				mainFn, err := buildMain(m, fn)
				if err != nil {
					t.Fatal(err)
				}
				ip := mir.NewInterp(1 << 16)
				ip.Legacy = legacy
				got, err := ip.Run(mainFn)
				if err != nil {
					t.Fatal(err)
				}
				return got, ip.Stats()
			}
			legacyRes, legacyStats := run(true)
			compiledRes, compiledStats := run(false)
			if legacyRes != compiledRes {
				t.Fatalf("main result mismatch: legacy=%#x compiled=%#x", legacyRes, compiledRes)
			}
			if legacyStats.Steps != compiledStats.Steps {
				t.Fatalf("steps mismatch: legacy=%d compiled=%d", legacyStats.Steps, compiledStats.Steps)
			}
			if !reflect.DeepEqual(legacyStats.Ops, compiledStats.Ops) {
				t.Fatalf("op mix mismatch:\nlegacy:   %v\ncompiled: %v", legacyStats.Ops, compiledStats.Ops)
			}
		})
	}
}

// TestProfilingMixIdenticalOnBothEngines pins the mechanised profiling
// step: the per-iteration operation mix that calibrates every cost
// model must not depend on the execution engine.
func TestProfilingMixIdenticalOnBothEngines(t *testing.T) {
	for name, build := range kernelBuilders() {
		t.Run(name, func(t *testing.T) {
			mix := func(legacy bool) map[string]float64 {
				m := mir.NewModule("diff")
				fn, err := build(m, "kernel")
				if err != nil {
					t.Fatal(err)
				}
				ip := mir.NewInterp(1 << 16)
				ip.Legacy = legacy
				base, err := ip.Mem.Alloc((kernelArenaMask + 1 + 8) * 8)
				if err != nil {
					t.Fatal(err)
				}
				const iters = 256
				if _, err := ip.Run(fn, base, base, iters); err != nil {
					t.Fatal(err)
				}
				out := map[string]float64{}
				for k, v := range ip.Stats().Ops {
					out[k.String()] = v / iters
				}
				return out
			}
			legacyMix, compiledMix := mix(true), mix(false)
			if !reflect.DeepEqual(legacyMix, compiledMix) {
				t.Fatalf("profiling mix mismatch:\nlegacy:   %v\ncompiled: %v", legacyMix, compiledMix)
			}
		})
	}
}
