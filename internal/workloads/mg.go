package workloads

import (
	"fmt"
	"math"
)

// Grid3D is a cubic scalar field with (n+1)^3 points, the data
// structure of the NPB MG multigrid benchmark (the paper's background
// load generator, MG class B).
type Grid3D struct {
	N   int // cells per side; points per side = N+1
	Val []float64
}

// NewGrid3D allocates an (n+1)^3 grid of zeros.
func NewGrid3D(n int) *Grid3D {
	side := n + 1
	return &Grid3D{N: n, Val: make([]float64, side*side*side)}
}

// idx maps 3D coordinates to storage.
func (g *Grid3D) idx(x, y, z int) int {
	side := g.N + 1
	return (z*side+y)*side + x
}

// At reads a grid point.
func (g *Grid3D) At(x, y, z int) float64 { return g.Val[g.idx(x, y, z)] }

// Set writes a grid point.
func (g *Grid3D) Set(x, y, z int, v float64) { g.Val[g.idx(x, y, z)] = v }

// interior iterates interior points.
func (g *Grid3D) interior(f func(x, y, z int)) {
	for z := 1; z < g.N; z++ {
		for y := 1; y < g.N; y++ {
			for x := 1; x < g.N; x++ {
				f(x, y, z)
			}
		}
	}
}

// Residual computes r = f - A*u for the 7-point Poisson stencil.
func Residual(u, f, r *Grid3D) error {
	if u.N != f.N || u.N != r.N {
		return fmt.Errorf("workloads: residual grid mismatch")
	}
	h2 := 1.0 / float64(u.N*u.N)
	u.interior(func(x, y, z int) {
		lap := (u.At(x-1, y, z) + u.At(x+1, y, z) +
			u.At(x, y-1, z) + u.At(x, y+1, z) +
			u.At(x, y, z-1) + u.At(x, y, z+1) - 6*u.At(x, y, z)) / h2
		r.Set(x, y, z, f.At(x, y, z)+lap)
	})
	return nil
}

// Smooth applies weighted-Jacobi relaxation sweeps to A*u = f.
func Smooth(u, f *Grid3D, sweeps int) error {
	if u.N != f.N {
		return fmt.Errorf("workloads: smooth grid mismatch")
	}
	h2 := 1.0 / float64(u.N*u.N)
	const omega = 0.8
	tmp := NewGrid3D(u.N)
	for s := 0; s < sweeps; s++ {
		u.interior(func(x, y, z int) {
			nb := u.At(x-1, y, z) + u.At(x+1, y, z) +
				u.At(x, y-1, z) + u.At(x, y+1, z) +
				u.At(x, y, z-1) + u.At(x, y, z+1)
			// Fixed point of the residual's A = -laplacian convention:
			// (6u - nb)/h^2 = f  =>  u = (nb + h^2 f)/6.
			jac := (nb + h2*f.At(x, y, z)) / 6
			tmp.Set(x, y, z, (1-omega)*u.At(x, y, z)+omega*jac)
		})
		u.Val, tmp.Val = tmp.Val, u.Val
	}
	return nil
}

// Restrict coarsens r (fine, n) onto rc (coarse, n/2) by injection
// with neighbour averaging.
func Restrict(r, rc *Grid3D) error {
	if r.N != rc.N*2 {
		return fmt.Errorf("workloads: restrict expects fine N = 2*coarse N")
	}
	rc.interior(func(x, y, z int) {
		fx, fy, fz := 2*x, 2*y, 2*z
		center := r.At(fx, fy, fz)
		sum := r.At(fx-1, fy, fz) + r.At(fx+1, fy, fz) +
			r.At(fx, fy-1, fz) + r.At(fx, fy+1, fz) +
			r.At(fx, fy, fz-1) + r.At(fx, fy, fz+1)
		rc.Set(x, y, z, 0.5*center+sum/12)
	})
	return nil
}

// Prolong interpolates the coarse correction ec onto the fine grid e.
func Prolong(ec, e *Grid3D) error {
	if e.N != ec.N*2 {
		return fmt.Errorf("workloads: prolong expects fine N = 2*coarse N")
	}
	e.interior(func(x, y, z int) {
		// Trilinear interpolation from the enclosing coarse cell.
		cx, cy, cz := x/2, y/2, z/2
		fx, fy, fz := float64(x%2)/2, float64(y%2)/2, float64(z%2)/2
		clampAdd := func(c, d, n int) int {
			if c+d > n {
				return n
			}
			return c + d
		}
		x1 := clampAdd(cx, 1, ec.N)
		y1 := clampAdd(cy, 1, ec.N)
		z1 := clampAdd(cz, 1, ec.N)
		v := 0.0
		for _, p := range [8][4]float64{
			{0, 0, 0, (1 - fx) * (1 - fy) * (1 - fz)},
			{1, 0, 0, fx * (1 - fy) * (1 - fz)},
			{0, 1, 0, (1 - fx) * fy * (1 - fz)},
			{1, 1, 0, fx * fy * (1 - fz)},
			{0, 0, 1, (1 - fx) * (1 - fy) * fz},
			{1, 0, 1, fx * (1 - fy) * fz},
			{0, 1, 1, (1 - fx) * fy * fz},
			{1, 1, 1, fx * fy * fz},
		} {
			xx, yy, zz := cx, cy, cz
			if p[0] == 1 {
				xx = x1
			}
			if p[1] == 1 {
				yy = y1
			}
			if p[2] == 1 {
				zz = z1
			}
			v += p[3] * ec.At(xx, yy, zz)
		}
		e.Set(x, y, z, e.At(x, y, z)+v)
	})
	return nil
}

// VCycle performs one multigrid V-cycle on A*u = f and returns the
// final residual norm.
func VCycle(u, f *Grid3D, preSweeps, postSweeps int) (float64, error) {
	if u.N <= 4 || u.N%2 != 0 {
		// Coarsest level: relax hard.
		if err := Smooth(u, f, 30); err != nil {
			return 0, err
		}
	} else {
		if err := Smooth(u, f, preSweeps); err != nil {
			return 0, err
		}
		r := NewGrid3D(u.N)
		if err := Residual(u, f, r); err != nil {
			return 0, err
		}
		rc := NewGrid3D(u.N / 2)
		if err := Restrict(r, rc); err != nil {
			return 0, err
		}
		ec := NewGrid3D(u.N / 2)
		if _, err := VCycle(ec, rc, preSweeps, postSweeps); err != nil {
			return 0, err
		}
		if err := Prolong(ec, u); err != nil {
			return 0, err
		}
		if err := Smooth(u, f, postSweeps); err != nil {
			return 0, err
		}
	}
	r := NewGrid3D(u.N)
	if err := Residual(u, f, r); err != nil {
		return 0, err
	}
	var norm float64
	for _, v := range r.Val {
		norm += v * v
	}
	return math.Sqrt(norm), nil
}
