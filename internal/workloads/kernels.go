package workloads

import (
	"fmt"

	"xartrek/internal/mir"
)

// kernelBody emits one loop iteration's computation. It receives the
// induction variable i and the running accumulator and returns the new
// accumulator value.
type kernelBody func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value

// buildLoopKernel constructs the canonical selected-function shape the
// Xar-Trek profiling step identifies: a compute loop over n iterations
// reading from two input arrays, accumulating a result.
//
//	func name(in0 ptr, in1 ptr, n i64) accType
func buildLoopKernel(m *mir.Module, name string, accType mir.Type, body kernelBody) (*mir.Function, error) {
	f, err := m.AddFunc(name, accType, mir.Ptr, mir.Ptr, mir.I64)
	if err != nil {
		return nil, err
	}
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	bodyB := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b := mir.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(loop)

	b.SetBlock(loop)
	i := b.Phi(mir.I64)
	acc := b.Phi(accType)
	cond := b.ICmp(mir.CmpLT, i, f.Params[2])
	b.CondBr(cond, bodyB, exit)

	b.SetBlock(bodyB)
	acc2 := body(b, f, i, acc)
	i2 := b.Add(i, mir.ConstInt(mir.I64, 1))
	b.Br(loop)

	b.SetBlock(exit)
	b.Ret(acc)

	mir.AddIncoming(i, mir.ConstInt(mir.I64, 0), entry)
	mir.AddIncoming(i, i2, bodyB)
	var zero mir.Value = mir.ConstInt(accType, 0)
	if accType == mir.F64 {
		zero = mir.ConstFloat(0)
	}
	mir.AddIncoming(acc, zero, entry)
	mir.AddIncoming(acc, acc2, bodyB)

	if err := mir.Verify(f); err != nil {
		return nil, fmt.Errorf("workloads: kernel %s: %w", name, err)
	}
	return f, nil
}

// kernelArenaMask bounds in-arena offsets so kernels can run in the
// interpreter against a fixed-size buffer (1024 eight-byte slots).
const kernelArenaMask = 1023

// maskedOffset emits o = (i & mask) * 8.
func maskedOffset(b *mir.Builder, i mir.Value) mir.Value {
	j := b.And(i, mir.ConstInt(mir.I64, kernelArenaMask))
	return b.Shl(j, mir.ConstInt(mir.I64, 3))
}

// buildFaceDetectKernel emits the Viola-Jones window-evaluation loop:
// eight integral-image corner loads, two rectangle sums, a scaled
// threshold compare, and a detection count.
func buildFaceDetectKernel(m *mir.Module, name string) (*mir.Function, error) {
	return buildLoopKernel(m, name, mir.I64, func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value {
		o := maskedOffset(b, i)
		base0 := b.PtrAdd(f.Params[0], o)
		base1 := b.PtrAdd(f.Params[1], o)
		var corners [8]mir.Value
		for k := 0; k < 4; k++ {
			p := b.PtrAdd(base0, mir.ConstInt(mir.I64, int64(8*k)))
			corners[k] = b.Load(mir.F64, p)
		}
		for k := 0; k < 4; k++ {
			p := b.PtrAdd(base1, mir.ConstInt(mir.I64, int64(8*k)))
			corners[4+k] = b.Load(mir.F64, p)
		}
		// Two rectangle sums via the summed-area identity.
		r0 := b.FAdd(b.FSub(b.FSub(corners[3], corners[1]), corners[2]), corners[0])
		r1 := b.FAdd(b.FSub(b.FSub(corners[7], corners[5]), corners[6]), corners[4])
		diff := b.FSub(r0, r1)
		scaled := b.FMul(diff, mir.ConstFloat(0.729))
		hit := b.FCmp(mir.CmpGT, scaled, mir.ConstFloat(18))
		inc := b.Select(hit, mir.ConstInt(mir.I64, 1), mir.ConstInt(mir.I64, 0))
		return b.Add(acc, inc)
	})
}

// buildDigitRecKernel emits the KNN inner loop: two glyph loads, XOR,
// and a branch-free population count (the Hamming distance), summed.
func buildDigitRecKernel(m *mir.Module, name string) (*mir.Function, error) {
	return buildLoopKernel(m, name, mir.I64, func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value {
		o := maskedOffset(b, i)
		a := b.Load(mir.I64, b.PtrAdd(f.Params[0], o))
		t := b.Load(mir.I64, b.PtrAdd(f.Params[1], o))
		v := b.Xor(a, t)
		// Hacker's-Delight popcount without multiplies.
		m1 := mir.ConstInt(mir.I64, 0x5555555555555555)
		m2 := mir.ConstInt(mir.I64, 0x3333333333333333)
		m4 := mir.ConstInt(mir.I64, 0x0f0f0f0f0f0f0f0f)
		v = b.Sub(v, b.And(b.LShr(v, mir.ConstInt(mir.I64, 1)), m1))
		v = b.Add(b.And(v, m2), b.And(b.LShr(v, mir.ConstInt(mir.I64, 2)), m2))
		v = b.And(b.Add(v, b.LShr(v, mir.ConstInt(mir.I64, 4))), m4)
		v = b.Add(v, b.LShr(v, mir.ConstInt(mir.I64, 8)))
		v = b.Add(v, b.LShr(v, mir.ConstInt(mir.I64, 16)))
		v = b.Add(v, b.LShr(v, mir.ConstInt(mir.I64, 32)))
		v = b.And(v, mir.ConstInt(mir.I64, 0x7f))
		return b.Add(acc, v)
	})
}

// buildCGKernel emits the sparse matrix-vector inner loop: value load,
// column-index load, irregular x[col] gather, multiply-accumulate.
func buildCGKernel(m *mir.Module, name string) (*mir.Function, error) {
	return buildLoopKernel(m, name, mir.F64, func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value {
		o := maskedOffset(b, i)
		val := b.Load(mir.F64, b.PtrAdd(f.Params[0], o))
		col := b.Load(mir.I64, b.PtrAdd(f.Params[1], o))
		colOff := b.Shl(b.And(col, mir.ConstInt(mir.I64, kernelArenaMask)), mir.ConstInt(mir.I64, 3))
		x := b.Load(mir.F64, b.PtrAdd(f.Params[0], colOff))
		return b.FAdd(acc, b.FMul(val, x))
	})
}

// buildBFSKernel emits the adjacency-row scan: frontier-distance load,
// adjacency load, visited check, distance update count.
func buildBFSKernel(m *mir.Module, name string) (*mir.Function, error) {
	return buildLoopKernel(m, name, mir.I64, func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value {
		o := maskedOffset(b, i)
		adj := b.Load(mir.I64, b.PtrAdd(f.Params[0], o))
		dist := b.Load(mir.I64, b.PtrAdd(f.Params[1], o))
		// Third, dependent access: the neighbour's distance.
		nOff := b.Shl(b.And(adj, mir.ConstInt(mir.I64, kernelArenaMask)), mir.ConstInt(mir.I64, 3))
		ndist := b.Load(mir.I64, b.PtrAdd(f.Params[1], nOff))
		unvisited := b.ICmp(mir.CmpLT, ndist, dist)
		inc := b.Select(unvisited, mir.ConstInt(mir.I64, 1), mir.ConstInt(mir.I64, 0))
		return b.Add(acc, inc)
	})
}

// buildMGKernel emits the 7-point stencil sweep used by the MG load
// generator.
func buildMGKernel(m *mir.Module, name string) (*mir.Function, error) {
	return buildLoopKernel(m, name, mir.F64, func(b *mir.Builder, f *mir.Function, i, acc mir.Value) mir.Value {
		o := maskedOffset(b, i)
		base := b.PtrAdd(f.Params[0], o)
		var nb [7]mir.Value
		for k := 0; k < 7; k++ {
			p := b.PtrAdd(base, mir.ConstInt(mir.I64, int64(8*k)))
			nb[k] = b.Load(mir.F64, p)
		}
		sum := nb[0]
		for k := 1; k < 6; k++ {
			sum = b.FAdd(sum, nb[k])
		}
		center := b.FMul(nb[6], mir.ConstFloat(6))
		lap := b.FSub(sum, center)
		scaled := b.FMul(lap, mir.ConstFloat(0.166666))
		return b.FAdd(acc, scaled)
	})
}

// buildMain emits the instrumentable application main: it calls the
// selected function once (the Table 1 benchmarks call the kernel once
// per run).
func buildMain(m *mir.Module, kernel *mir.Function) (*mir.Function, error) {
	f, err := m.AddFunc("main", mir.I64)
	if err != nil {
		return nil, err
	}
	b := mir.NewBuilder(f)
	b.SetBlock(f.NewBlock("entry"))
	buf := b.Alloca((kernelArenaMask + 1 + 8) * 8)
	r := b.Call(kernel, buf, buf, mir.ConstInt(mir.I64, 64))
	if kernel.Ret == mir.F64 {
		ri := b.FPToSI(mir.I64, r)
		b.Ret(ri)
	} else {
		b.Ret(r)
	}
	if err := mir.Verify(f); err != nil {
		return nil, fmt.Errorf("workloads: main: %w", err)
	}
	return f, nil
}
