package workloads

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"xartrek/internal/popcorn"
	"xartrek/internal/xrt"
)

// Table 1 vanilla-x86 calibration targets.
var table1X86 = map[string]time.Duration{
	"CG-A":       2182 * time.Millisecond,
	"FaceDet320": 175 * time.Millisecond,
	"FaceDet640": 885 * time.Millisecond,
	"Digit500":   883 * time.Millisecond,
	"Digit2000":  3521 * time.Millisecond,
}

func TestRegistryCalibration(t *testing.T) {
	apps, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 5 {
		t.Fatalf("apps = %d, want 5", len(apps))
	}
	for _, app := range apps {
		want := table1X86[app.Name]
		got := app.X86Time()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.02*float64(want) {
			t.Fatalf("%s x86 time = %v, want %v ±2%%", app.Name, got, want)
		}
	}
}

func TestTable1MigrationOrderings(t *testing.T) {
	apps, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	net := popcorn.EthernetGbps1()
	pcie := xrt.PCIeGen3x16()
	byName := make(map[string]*App, len(apps))
	for _, a := range apps {
		byName[a.Name] = a
	}

	// CG-A: FPGA slowest, ARM in between (Table 1 row 1).
	cg := byName["CG-A"]
	cgFPGA, err := cg.FPGATime(pcie)
	if err != nil {
		t.Fatal(err)
	}
	if !(cg.X86Time() < cg.ARMTime(net) && cg.ARMTime(net) < cgFPGA) {
		t.Fatalf("CG-A ordering: x86=%v arm=%v fpga=%v", cg.X86Time(), cg.ARMTime(net), cgFPGA)
	}

	// FaceDet640 and both digit sizes beat x86 on the FPGA.
	for _, name := range []string{"FaceDet640", "Digit500", "Digit2000"} {
		a := byName[name]
		fpga, err := a.FPGATime(pcie)
		if err != nil {
			t.Fatal(err)
		}
		if fpga >= a.X86Time() {
			t.Fatalf("%s: fpga %v not faster than x86 %v", name, fpga, a.X86Time())
		}
	}

	// FaceDet320's small image does not amortise: x86 wins.
	fd := byName["FaceDet320"]
	fdFPGA, err := fd.FPGATime(pcie)
	if err != nil {
		t.Fatal(err)
	}
	if fdFPGA <= fd.X86Time() {
		t.Fatalf("FaceDet320: fpga %v should be slower than x86 %v", fdFPGA, fd.X86Time())
	}
}

func TestDSMLinkWorkBounds(t *testing.T) {
	apps, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		dsm := a.DSMLinkWork()
		if dsm < 0 {
			t.Fatalf("%s: negative DSM work", a.Name)
		}
		// DSM traffic must not exceed kernel time, or isolated
		// ARM measurements would drift from Table 1.
		if dsm > a.ARMKernelTime() {
			t.Fatalf("%s: DSM work %v exceeds kernel time %v", a.Name, dsm, a.ARMKernelTime())
		}
		if a.Irregular == 0 && dsm != 0 {
			t.Fatalf("%s: regular app generates DSM traffic", a.Name)
		}
	}
}

func TestMGBNotMigratable(t *testing.T) {
	mg, err := NewMGB()
	if err != nil {
		t.Fatal(err)
	}
	if mg.Migratable || mg.HWCapable {
		t.Fatalf("MG-B flags = %+v, want background-only", mg)
	}
	if _, err := mg.XO(); err == nil {
		t.Fatal("MG-B synthesized a hardware kernel")
	}
}

func TestBFSScalesQuadratically(t *testing.T) {
	small, err := NewBFS(1000)
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewBFS(2000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(large.X86Time()) / float64(small.X86Time())
	// Adjacency-matrix BFS is O(n^2); doubling n roughly quadruples
	// the work (the small graph also loses its cache residency, so
	// allow a wide band above 4).
	if ratio < 3.5 {
		t.Fatalf("2000/1000 node time ratio = %.1f, want >= 3.5", ratio)
	}
}

// --- Face detection ---

func TestIntegralImageRectSum(t *testing.T) {
	im := NewImage(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			im.Set(x, y, 1)
		}
	}
	ii := NewIntegralImage(im)
	if got := ii.RectSum(Rect{X: 0, Y: 0, W: 8, H: 8}); got != 64 {
		t.Fatalf("full sum = %d, want 64", got)
	}
	if got := ii.RectSum(Rect{X: 2, Y: 3, W: 4, H: 2}); got != 8 {
		t.Fatalf("inner sum = %d, want 8", got)
	}
}

func TestIntegralImageMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := NewImage(16, 12)
		for i := range im.Pix {
			im.Pix[i] = byte(rng.Intn(256))
		}
		ii := NewIntegralImage(im)
		r := Rect{X: rng.Intn(12), Y: rng.Intn(8), W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)}
		var want int64
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				want += int64(im.At(x, y))
			}
		}
		return ii.RectSum(r) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectFacesFindsPlantedFaces(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	im, planted := GenerateFaceImage(rng, 320, 240, 2)
	found := DetectFaces(im)
	if len(found) == 0 {
		t.Fatal("detector found nothing on an image with planted faces")
	}
	// At least one planted face overlaps a detection.
	matched := 0
	for _, p := range planted {
		for _, f := range found {
			if overlapFrac(p, f) > 0.3 {
				matched++
				break
			}
		}
	}
	if matched == 0 {
		t.Fatalf("no detection overlaps the %d planted faces (found %v)", len(planted), found)
	}
}

func TestDetectFacesEmptyImage(t *testing.T) {
	im := NewImage(320, 240) // uniform black: nothing face-like
	if found := DetectFaces(im); len(found) != 0 {
		t.Fatalf("detector hallucinated %d faces on a black image", len(found))
	}
}

// --- PGM codec ---

func TestPGMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	im, _ := GenerateFaceImage(rng, 64, 48, 1)
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("dims %dx%d, want %dx%d", back.W, back.H, im.W, im.H)
	}
	if !bytes.Equal(back.Pix, im.Pix) {
		t.Fatal("pixel data corrupted in round trip")
	}
}

func TestPGMRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "P3\n2 2\n255\nxxxx", "P5\n-1 2\n255\n"} {
		if _, err := ReadPGM(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("ReadPGM accepted %q", in)
		}
	}
}

// --- Digit recognition ---

func TestKNNClassifierAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewKNNClassifier(rng, 3, 40, 6)
	tests := GenerateDigitSet(rng, 500, 6)
	acc := c.Accuracy(tests)
	if acc < 0.85 {
		t.Fatalf("accuracy = %.2f, want >= 0.85 on lightly noised digits", acc)
	}
}

func TestHammingDistanceProperties(t *testing.T) {
	f := func(a, b uint64) bool {
		da, db := Digit(a), Digit(b)
		d := HammingDistance(da, db)
		if d < 0 || d > 64 {
			return false
		}
		if HammingDistance(db, da) != d {
			return false // symmetry
		}
		return HammingDistance(da, da) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrototypeDigitsDistinct(t *testing.T) {
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if PrototypeDigit(i) == PrototypeDigit(j) {
				t.Fatalf("digits %d and %d share a prototype", i, j)
			}
		}
	}
}

// --- BFS ---

func TestBFSDistancesMatchBetweenRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := GenerateGraph(rng, 64, 0.1)
	dense, err := g.BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := g.ToCSR().BFS(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range dense {
		if dense[v] != sparse[v] {
			t.Fatalf("node %d: dense %d != csr %d", v, dense[v], sparse[v])
		}
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// Property: along any edge (u,v), |dist(u)-dist(v)| <= 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := GenerateGraph(rng, 32, 0.15)
		dist, err := g.BFS(0)
		if err != nil {
			return false
		}
		for u := 0; u < g.N; u++ {
			for v := 0; v < g.N; v++ {
				if !g.HasEdge(u, v) || dist[u] < 0 || dist[v] < 0 {
					continue
				}
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- CG ---

func TestConjugateGradientConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 64
	a := GenerateSPDMatrix(rng, n, 6)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()
	}
	x := make([]float64, n)
	res, err := ConjugateGradient(a, b, x, 200, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualNorm > 1e-6 {
		t.Fatalf("residual = %g after %d iterations", res.ResidualNorm, res.Iterations)
	}
	// Verify Ax ≈ b directly.
	ax := make([]float64, n)
	if err := a.SpMV(x, ax); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if d := ax[i] - b[i]; d > 1e-5 || d < -1e-5 {
			t.Fatalf("residual component %d = %g", i, d)
		}
	}
}

// --- MG ---

func TestMGVCycleReducesResidual(t *testing.T) {
	n := 32 // even: exercises the full multilevel hierarchy
	u := NewGrid3D(n)
	f := NewGrid3D(n)
	f.Set(n/2, n/2, n/2, 1)

	r := NewGrid3D(n)
	if err := Residual(u, f, r); err != nil {
		t.Fatal(err)
	}
	before := gridNorm(r)

	if _, err := VCycle(u, f, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := Residual(u, f, r); err != nil {
		t.Fatal(err)
	}
	after := gridNorm(r)
	if after >= before {
		t.Fatalf("V-cycle did not reduce residual: %g -> %g", before, after)
	}
}

func gridNorm(g *Grid3D) float64 {
	var s float64
	for _, v := range g.Val {
		s += v * v
	}
	return s
}
