package workloads

import "math/rand"

// Rect is a detection window.
type Rect struct {
	X, Y, W, H int
}

// IntegralImage holds summed-area tables for O(1) rectangle sums —
// the core data structure of Viola-Jones face detection (the Rosetta
// face-detection benchmark's algorithm).
type IntegralImage struct {
	W, H int
	sum  []int64
}

// NewIntegralImage computes the summed-area table of im.
func NewIntegralImage(im *Image) *IntegralImage {
	ii := &IntegralImage{W: im.W, H: im.H, sum: make([]int64, (im.W+1)*(im.H+1))}
	stride := im.W + 1
	for y := 1; y <= im.H; y++ {
		var row int64
		for x := 1; x <= im.W; x++ {
			row += int64(im.Pix[(y-1)*im.W+x-1])
			ii.sum[y*stride+x] = ii.sum[(y-1)*stride+x] + row
		}
	}
	return ii
}

// RectSum returns the pixel sum inside r (clipped rectangles are the
// caller's responsibility; out-of-range panics are avoided by clamping).
func (ii *IntegralImage) RectSum(r Rect) int64 {
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0 := clamp(r.X, ii.W)
	y0 := clamp(r.Y, ii.H)
	x1 := clamp(r.X+r.W, ii.W)
	y1 := clamp(r.Y+r.H, ii.H)
	s := ii.W + 1
	return ii.sum[y1*s+x1] - ii.sum[y0*s+x1] - ii.sum[y1*s+x0] + ii.sum[y0*s+x0]
}

// haarFeature is a two-rectangle Haar-like feature relative to a unit
// window: bright region minus dark region must exceed a threshold.
type haarFeature struct {
	// Coordinates in 1/24ths of the window (Viola-Jones base window).
	brightX, brightY, brightW, brightH int
	darkX, darkY, darkW, darkH         int
	// threshold on mean-intensity difference (bright - dark).
	threshold float64
}

// faceCascade is a compact cascade tuned for the synthetic faces
// GenerateFaceImage plants: a bright face disk with a darker eye band
// and a darker mouth region.
var faceCascade = []haarFeature{
	// Cheeks brighter than eye band.
	{brightX: 4, brightY: 12, brightW: 16, brightH: 6, darkX: 4, darkY: 6, darkW: 16, darkH: 5, threshold: 18},
	// Forehead brighter than eye band.
	{brightX: 6, brightY: 1, brightW: 12, brightH: 4, darkX: 4, darkY: 6, darkW: 16, darkH: 5, threshold: 14},
	// Nose column brighter than the two eye boxes' row.
	{brightX: 10, brightY: 7, brightW: 4, brightH: 4, darkX: 3, darkY: 7, darkW: 6, darkH: 4, threshold: 10},
	// Face interior brighter than surrounding border.
	{brightX: 6, brightY: 6, brightW: 12, brightH: 12, darkX: 0, darkY: 0, darkW: 24, darkH: 3, threshold: 22},
}

// baseWindow is the cascade's native window size.
const baseWindow = 24

// evalWindow runs the cascade on one window; every stage must pass.
func evalWindow(ii *IntegralImage, x, y, w int) bool {
	scale := float64(w) / baseWindow
	for _, f := range faceCascade {
		br := Rect{
			X: x + int(float64(f.brightX)*scale),
			Y: y + int(float64(f.brightY)*scale),
			W: maxInt(1, int(float64(f.brightW)*scale)),
			H: maxInt(1, int(float64(f.brightH)*scale)),
		}
		dk := Rect{
			X: x + int(float64(f.darkX)*scale),
			Y: y + int(float64(f.darkY)*scale),
			W: maxInt(1, int(float64(f.darkW)*scale)),
			H: maxInt(1, int(float64(f.darkH)*scale)),
		}
		brMean := float64(ii.RectSum(br)) / float64(br.W*br.H)
		dkMean := float64(ii.RectSum(dk)) / float64(dk.W*dk.H)
		if brMean-dkMean < f.threshold {
			return false
		}
	}
	return true
}

// DetectFaces scans the image with a sliding window across scales and
// returns the detections after overlap suppression.
func DetectFaces(im *Image) []Rect {
	ii := NewIntegralImage(im)
	var raw []Rect
	for w := baseWindow; w <= minInt(im.W, im.H); w = w * 5 / 4 {
		step := maxInt(2, w/12)
		for y := 0; y+w <= im.H; y += step {
			for x := 0; x+w <= im.W; x += step {
				if evalWindow(ii, x, y, w) {
					raw = append(raw, Rect{X: x, Y: y, W: w, H: w})
				}
			}
		}
	}
	return suppressOverlaps(raw)
}

// suppressOverlaps merges detections that overlap by more than half.
func suppressOverlaps(raw []Rect) []Rect {
	var out []Rect
	for _, r := range raw {
		merged := false
		for i, o := range out {
			if overlapFrac(r, o) > 0.5 {
				// Keep the earlier (typically smaller-scale) box.
				_ = i
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, r)
		}
	}
	return out
}

// overlapFrac is intersection-over-smaller-area.
func overlapFrac(a, b Rect) float64 {
	x0 := maxInt(a.X, b.X)
	y0 := maxInt(a.Y, b.Y)
	x1 := minInt(a.X+a.W, b.X+b.W)
	y1 := minInt(a.Y+a.H, b.Y+b.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	inter := float64((x1 - x0) * (y1 - y0))
	small := float64(minInt(a.W*a.H, b.W*b.H))
	return inter / small
}

// GenerateFaceImage produces a synthetic scene with nFaces planted
// face patterns (our stand-in for the WIDER dataset) and returns the
// image plus the ground-truth rectangles.
func GenerateFaceImage(rng *rand.Rand, w, h, nFaces int) (*Image, []Rect) {
	im := NewImage(w, h)
	// Mid-gray noisy background.
	for i := range im.Pix {
		im.Pix[i] = byte(90 + rng.Intn(25))
	}
	var truth []Rect
	for f := 0; f < nFaces; f++ {
		size := baseWindow + rng.Intn(maxInt(1, minInt(w, h)/3-baseWindow))
		var x, y int
		for attempt := 0; attempt < 50; attempt++ {
			x = rng.Intn(maxInt(1, w-size))
			y = rng.Intn(maxInt(1, h-size))
			ok := true
			for _, t := range truth {
				if overlapFrac(Rect{x, y, size, size}, t) > 0 {
					ok = false
					break
				}
			}
			if ok {
				break
			}
		}
		drawFace(im, x, y, size, rng)
		truth = append(truth, Rect{X: x, Y: y, W: size, H: size})
	}
	return im, truth
}

// drawFace paints the pattern the cascade detects: bright face with a
// dark eye band and dark border.
func drawFace(im *Image, x, y, size int, rng *rand.Rand) {
	scale := float64(size) / baseWindow
	px := func(u, v int) (int, int) {
		return x + int(float64(u)*scale), y + int(float64(v)*scale)
	}
	fill := func(u0, v0, u1, v1 int, base byte) {
		x0, y0 := px(u0, v0)
		x1, y1 := px(u1, v1)
		for yy := y0; yy < y1; yy++ {
			for xx := x0; xx < x1; xx++ {
				im.Set(xx, yy, base+byte(rng.Intn(8)))
			}
		}
	}
	fill(0, 0, 24, 24, 80)   // border/hair, dark
	fill(2, 3, 22, 23, 185)  // skin, bright
	fill(4, 6, 20, 11, 110)  // eye band, dark
	fill(10, 7, 14, 11, 190) // nose bridge, bright
	fill(8, 17, 16, 20, 120) // mouth, darker
	fill(4, 12, 20, 17, 195) // cheeks, bright
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
