package workloads

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrCGDiverged is reported when conjugate gradient fails to reduce
// the residual.
var ErrCGDiverged = errors.New("workloads: conjugate gradient diverged")

// SparseMatrix is a square matrix in compressed sparse row form, the
// data structure behind the NPB CG benchmark's sparse
// matrix-vector products.
type SparseMatrix struct {
	N      int
	RowPtr []int
	ColIdx []int
	Values []float64
}

// NNZ reports the number of stored nonzeros.
func (m *SparseMatrix) NNZ() int { return len(m.Values) }

// GenerateSPDMatrix builds a random symmetric positive-definite sparse
// matrix in the style of NPB CG's makea: random off-diagonal pattern
// with a dominant diagonal.
func GenerateSPDMatrix(rng *rand.Rand, n, nonzerosPerRow int) *SparseMatrix {
	if nonzerosPerRow < 1 {
		nonzerosPerRow = 1
	}
	// Build a symmetric pattern: collect (i, j, v) above the
	// diagonal, mirror it, then add the dominant diagonal.
	type entry struct {
		col int
		val float64
	}
	rows := make([][]entry, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nonzerosPerRow; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := rng.Float64()*2 - 1
			rows[i] = append(rows[i], entry{j, v})
			rows[j] = append(rows[j], entry{i, v})
		}
	}
	m := &SparseMatrix{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		// Diagonal dominance guarantees positive definiteness.
		var offSum float64
		for _, e := range rows[i] {
			offSum += math.Abs(e.val)
		}
		m.ColIdx = append(m.ColIdx, i)
		m.Values = append(m.Values, offSum+1)
		for _, e := range rows[i] {
			m.ColIdx = append(m.ColIdx, e.col)
			m.Values = append(m.Values, e.val)
		}
		m.RowPtr[i+1] = len(m.Values)
	}
	return m
}

// SpMV computes y = A*x. The x[col] gather is the irregular,
// pointer-chasing access pattern that makes CG slow on PCIe-attached
// FPGAs (Section 4.4).
func (m *SparseMatrix) SpMV(x, y []float64) error {
	if len(x) != m.N || len(y) != m.N {
		return fmt.Errorf("workloads: SpMV dimension mismatch: n=%d len(x)=%d len(y)=%d", m.N, len(x), len(y))
	}
	for i := 0; i < m.N; i++ {
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations   int
	ResidualNorm float64
	InitialNorm  float64
}

// ConjugateGradient solves A*x = b, overwriting x, with at most
// maxIter iterations — the computational core of NPB CG.
func ConjugateGradient(a *SparseMatrix, b, x []float64, maxIter int, tol float64) (CGResult, error) {
	n := a.N
	if len(b) != n || len(x) != n {
		return CGResult{}, fmt.Errorf("workloads: CG dimension mismatch")
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	if err := a.SpMV(x, ap); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	dot := func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	rr := dot(r, r)
	res := CGResult{InitialNorm: math.Sqrt(rr)}
	for it := 0; it < maxIter && math.Sqrt(rr) > tol; it++ {
		if err := a.SpMV(p, ap); err != nil {
			return res, err
		}
		pap := dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("%w: non-positive curvature %g", ErrCGDiverged, pap)
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rr2 := dot(r, r)
		beta := rr2 / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rr2
		res.Iterations++
	}
	res.ResidualNorm = math.Sqrt(rr)
	if res.ResidualNorm > res.InitialNorm {
		return res, fmt.Errorf("%w: residual grew from %g to %g", ErrCGDiverged, res.InitialNorm, res.ResidualNorm)
	}
	return res, nil
}
