// Package workloads implements the paper's evaluation applications for
// real: Rosetta-style face detection (Viola-Jones) and digit
// recognition (KNN), NPB CG and MG, and breadth-first search, together
// with synthetic input generators (the WIDER-dataset images of Section
// 4.2 are proprietary-licensed, so we plant faces in generated PGM
// images instead) and the calibrated per-target execution profiles used
// by the simulation.
package workloads

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// PGM errors.
var (
	ErrBadPGM = errors.New("workloads: malformed PGM")
)

// Image is an 8-bit grayscale image.
type Image struct {
	W, H int
	Pix  []byte // row-major, len = W*H
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, w*h)}
}

// At returns the pixel at (x, y); out-of-bounds reads return 0.
func (im *Image) At(x, y int) byte {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are dropped.
func (im *Image) Set(x, y int, v byte) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Bytes reports the raw image payload size.
func (im *Image) Bytes() int64 { return int64(len(im.Pix)) }

// WritePGM encodes the image in binary PGM (P5), the format the
// paper's modified face-detection benchmark reads.
func WritePGM(w io.Writer, im *Image) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("pgm header: %w", err)
	}
	if _, err := w.Write(im.Pix); err != nil {
		return fmt.Errorf("pgm payload: %w", err)
	}
	return nil
}

// ReadPGM decodes a binary (P5) or ASCII (P2) PGM stream.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("%w: magic %q", ErrBadPGM, magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%w: header field %q", ErrBadPGM, tok)
		}
		dims[i] = v
	}
	w, h, maxv := dims[0], dims[1], dims[2]
	if maxv > 255 {
		return nil, fmt.Errorf("%w: 16-bit samples unsupported (maxval %d)", ErrBadPGM, maxv)
	}
	im := NewImage(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, im.Pix); err != nil {
			return nil, fmt.Errorf("%w: payload: %v", ErrBadPGM, err)
		}
		return im, nil
	}
	for i := range im.Pix {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("%w: sample %d: %v", ErrBadPGM, i, err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > maxv {
			return nil, fmt.Errorf("%w: sample %q", ErrBadPGM, tok)
		}
		im.Pix[i] = byte(v)
	}
	return im, nil
}

// pgmToken reads the next whitespace-delimited token, skipping
// #-comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	inComment := false
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", fmt.Errorf("%w: %v", ErrBadPGM, err)
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
			}
		case b == '#':
			inComment = true
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
