package workloads

import (
	"fmt"
	"sync/atomic"
	"time"

	"xartrek/internal/hls"
	"xartrek/internal/isa"
	"xartrek/internal/mir"
	"xartrek/internal/par"
	"xartrek/internal/popcorn"
	"xartrek/internal/xrt"
)

// App is one evaluation application: its multi-ISA program, the
// selected function's hardware-kernel spec, and the execution profile
// the Xar-Trek compiler's profiling and threshold-estimation steps
// produce.
//
// Calibration note (see DESIGN.md §2): for each application exactly one
// quantity is taken from the paper — the measured vanilla-x86 execution
// time (Table 1, column 1), which stands in for the profiling run we
// cannot perform on the authors' Xeon. The kernel's iteration count is
// derived from it. Every other number (ARM time, FPGA time, thresholds,
// binary sizes) is *predicted* by this repository's models and compared
// against the paper in EXPERIMENTS.md.
type App struct {
	// Name is the benchmark name as it appears in the paper.
	Name string
	// KernelName is the hardware kernel name (Table 2's second column).
	KernelName string
	// Program is the multi-ISA program (module with main + kernel).
	Program *popcorn.Program
	// Spec is the HLS synthesis spec for the selected function.
	Spec hls.KernelSpec
	// PerIter is the selected function's per-iteration dynamic
	// operation mix (from the profiling step).
	PerIter isa.OpMix
	// Trips is the calibrated per-invocation iteration count.
	Trips int64
	// Irregular is the cache-miss fraction of the kernel's loads.
	Irregular float64
	// BytesIn/BytesOut are the FPGA transfer sizes per invocation.
	BytesIn, BytesOut int64
	// WorkingSetBytes is the DSM working set migrated on x86→ARM.
	WorkingSetBytes int64
	// FPGAFixedOverhead is per-invocation host-side setup (OpenCL
	// enqueue, buffer registration).
	FPGAFixedOverhead time.Duration
	// NonKernel is the part of the application outside the selected
	// function; it always runs on x86.
	NonKernel time.Duration
	// Migratable is false for background load generators (MG).
	Migratable bool
	// HWCapable is false when no hardware kernel exists.
	HWCapable bool

	// x86KernelNS and armKernelNS memoize the kernel-time cost-model
	// walk, which is a pure function of the fields above yet sits on
	// the per-request path of serving campaigns (every launch and every
	// scheduling decision asks for it). Atomics, not a mutex: one app
	// pool is shared by concurrently running shard timelines, and every
	// writer stores the identical deterministic value. Zero means
	// uncomputed — a genuinely zero kernel time just recomputes.
	x86KernelNS, armKernelNS atomic.Int64
}

// perIterSeconds is the single-iteration time on the cost model.
func (a *App) perIterSeconds(cm *isa.CostModel) float64 {
	return cm.Seconds(a.PerIter, a.Irregular)
}

// X86Time is the vanilla-x86 execution time of the whole application
// (exclusive single-core).
func (a *App) X86Time() time.Duration {
	sec := a.perIterSeconds(isa.X86CostModel()) * float64(a.Trips)
	return a.NonKernel + time.Duration(sec*float64(time.Second))
}

// X86KernelTime is the selected function's x86 time.
func (a *App) X86KernelTime() time.Duration {
	if ns := a.x86KernelNS.Load(); ns != 0 {
		return time.Duration(ns)
	}
	sec := a.perIterSeconds(isa.X86CostModel()) * float64(a.Trips)
	d := time.Duration(sec * float64(time.Second))
	a.x86KernelNS.Store(int64(d))
	return d
}

// ARMKernelTime is the selected function's time on one ThunderX core.
func (a *App) ARMKernelTime() time.Duration {
	if ns := a.armKernelNS.Load(); ns != 0 {
		return time.Duration(ns)
	}
	sec := a.perIterSeconds(isa.ARMCostModel()) * float64(a.Trips)
	d := time.Duration(sec * float64(time.Second))
	a.armKernelNS.Store(int64(d))
	return d
}

// stateTransformCost is the Popcorn run-time's stack/register
// transformation latency at a migration point.
const stateTransformCost = 300 * time.Microsecond

// StateTransformTime is the cross-ISA program-state transformation
// cost paid at migration.
func (a *App) StateTransformTime() time.Duration { return stateTransformCost }

// DSMLinkWork is the Ethernet occupancy the application's DSM traffic
// generates while its kernel executes on ARM: the irregular (cache-
// and page-missing) fraction of its accesses faults to the x86 home
// node over the shared link. The factor 1.7 covers read faults plus
// write-invalidation round trips (calibrated so Figure 9's Xar-Trek
// vs Vanilla/x86 crossover falls at the all-CG-A mix, as in the
// paper). In isolation this stays below the kernel time (the link is
// not the bottleneck for one instance, so Table 1's in-locus times are
// unaffected); under high multiprogramming the shared 1 Gbps link
// serialises, which is what makes pointer-chasing applications
// unprofitable to migrate at scale (Section 4.4).
func (a *App) DSMLinkWork() time.Duration {
	frac := 1.7 * a.Irregular
	if frac > 1 {
		frac = 1
	}
	return time.Duration(frac * float64(a.ARMKernelTime()))
}

// ARMTime is the application time under x86→ARM migration, including
// the Popcorn state transformation and DSM working-set transfer over
// Ethernet (measured "in locus" per Section 3.1). DSM traffic overlaps
// kernel execution and is slower only when the link is contended, so
// it does not appear in the isolated figure.
func (a *App) ARMTime(net popcorn.NetModel) time.Duration {
	migration := stateTransformCost + net.TransferTime(a.WorkingSetBytes)
	return a.NonKernel + migration + a.ARMKernelTime()
}

// XO synthesizes the hardware kernel.
func (a *App) XO() (*hls.XO, error) {
	if !a.HWCapable {
		return nil, fmt.Errorf("workloads: %s has no hardware kernel", a.Name)
	}
	spec := a.Spec
	spec.Name = a.KernelName
	unroll := spec.Unroll
	if unroll < 1 {
		unroll = 1
	}
	spec.TripCount = a.Trips
	return hls.Compile(spec)
}

// FPGATime is the application time under x86→FPGA migration with a
// pre-configured device: PCIe transfers plus kernel pipeline latency
// plus host overhead.
func (a *App) FPGATime(pcie xrt.PCIeModel) (time.Duration, error) {
	xo, err := a.XO()
	if err != nil {
		return 0, err
	}
	t := a.NonKernel + a.FPGAFixedOverhead +
		pcie.TransferTime(a.BytesIn) +
		xo.InvocationLatency() +
		pcie.TransferTime(a.BytesOut)
	return t, nil
}

// calibrateTrips solves for the iteration count that reproduces the
// measured vanilla-x86 time.
func calibrateTrips(perIter isa.OpMix, irregular float64, measuredX86, nonKernel time.Duration) int64 {
	per := isa.X86CostModel().Seconds(perIter, irregular)
	kernel := (measuredX86 - nonKernel).Seconds()
	if kernel < 0 {
		kernel = 0
	}
	return int64(kernel / per)
}

// dynamicPerIterMix measures the kernel's per-iteration operation mix
// by running it in the interpreter — the mechanised profiling step.
func dynamicPerIterMix(fn *mir.Function, iters int64) (isa.OpMix, error) {
	ip := mir.NewInterp(1 << 16)
	base, err := ip.Mem.Alloc((kernelArenaMask + 1 + 8) * 8)
	if err != nil {
		return nil, err
	}
	if _, err := ip.Run(fn, base, base, uint64(iters)); err != nil {
		return nil, err
	}
	mix := ip.Stats().Ops
	out := isa.OpMix{}
	for k, v := range mix {
		out[k] = v / float64(iters)
	}
	return out, nil
}

// newApp assembles an App around a kernel builder.
func newApp(name, kernelName string, build func(*mir.Module, string) (*mir.Function, error)) (*App, *mir.Function, error) {
	m := mir.NewModule(name)
	fn, err := build(m, "kernel_"+kernelName)
	if err != nil {
		return nil, nil, err
	}
	if _, err := buildMain(m, fn); err != nil {
		return nil, nil, err
	}
	mix, err := dynamicPerIterMix(fn, 256)
	if err != nil {
		return nil, nil, fmt.Errorf("workloads: profile %s: %w", name, err)
	}
	app := &App{
		Name:       name,
		KernelName: kernelName,
		Program: &popcorn.Program{
			Name:    name,
			Module:  m,
			Globals: []popcorn.Global{{Name: name + "_data", Size: 8192}},
		},
		PerIter:    mix,
		Migratable: true,
		HWCapable:  true,
	}
	app.Spec = hls.KernelSpec{Fn: fn, MemoryPorts: 2}
	return app, fn, nil
}

// Paper Table 1 vanilla-x86 measurements (milliseconds), the sole
// calibration inputs.
const (
	measuredCGAx86   = 2182 * time.Millisecond
	measuredFD320x86 = 175 * time.Millisecond
	measuredFD640x86 = 885 * time.Millisecond
	measuredD500x86  = 883 * time.Millisecond
	measuredD2000x86 = 3521 * time.Millisecond
	measuredMGBx86   = 4000 * time.Millisecond // background load generator
)

// NewCGA builds the NPB CG class-A application: floating-point SpMV
// with an irregular gather, slow on both ARM and (especially) the
// PCIe-attached FPGA.
func NewCGA() (*App, error) {
	app, _, err := newApp("CG-A", "KNL_HW_CG_A", buildCGKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0.35
	app.NonKernel = 20 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredCGAx86, app.NonKernel)
	app.Spec.RecurrenceII = 60 // serialised HBM gather + FP accumulation
	app.BytesIn = 26 << 20     // CSR matrix + vectors (n=14000, ~2M nnz)
	app.BytesOut = 14000 * 8
	app.WorkingSetBytes = 26 << 20
	app.FPGAFixedOverhead = 5 * time.Millisecond
	return app, nil
}

// NewFaceDet320 builds the 320x240 face-detection application.
func NewFaceDet320() (*App, error) {
	app, _, err := newApp("FaceDet320", "KNL_HW_FD320", buildFaceDetectKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0
	app.NonKernel = 5 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredFD320x86, app.NonKernel)
	// The small-image kernel evaluates cascade stages sequentially;
	// HLS cannot pipeline past the stage dependency.
	app.Spec.RecurrenceII = 10
	app.BytesIn = 320 * 240
	app.BytesOut = 4096
	app.WorkingSetBytes = 320 * 240 * 9 // image + f64 integral image
	app.FPGAFixedOverhead = 2 * time.Millisecond
	return app, nil
}

// NewFaceDet640 builds the 640x480 face-detection application; the
// larger image amortises into the FPGA's internal memories, so the
// hardware kernel pipelines better (RecurrenceII 5 vs 10) and beats
// x86 (Table 1).
func NewFaceDet640() (*App, error) {
	app, _, err := newApp("FaceDet640", "KNL_HW_FD640", buildFaceDetectKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0
	app.NonKernel = 10 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredFD640x86, app.NonKernel)
	app.Spec.RecurrenceII = 5
	app.Spec.LocalBufferBytes = 640 * 480
	app.BytesIn = 640 * 480
	app.BytesOut = 4096
	app.WorkingSetBytes = 640 * 480 * 9
	app.FPGAFixedOverhead = 2 * time.Millisecond
	return app, nil
}

// NewDigit500 builds the 500-test digit-recognition application.
func NewDigit500() (*App, error) {
	app, _, err := newApp("Digit500", "KNL_HW_DR500", buildDigitRecKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0
	app.NonKernel = 5 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredD500x86, app.NonKernel)
	app.BytesIn = 500*8 + 18950*8 // tests + Rosetta training set
	app.BytesOut = 500 * 4
	app.WorkingSetBytes = 1 << 20
	app.FPGAFixedOverhead = 2 * time.Millisecond
	return app, nil
}

// NewDigit2000 builds the 2000-test digit-recognition application;
// its hardware kernel (KNL_HW_DR200 in Table 2) is unrolled 2x.
func NewDigit2000() (*App, error) {
	app, _, err := newApp("Digit2000", "KNL_HW_DR200", buildDigitRecKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0
	app.NonKernel = 10 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredD2000x86, app.NonKernel)
	app.Spec.Unroll = 2
	app.BytesIn = 2000*8 + 18950*8
	app.BytesOut = 2000 * 4
	app.WorkingSetBytes = 2 << 20
	app.FPGAFixedOverhead = 2 * time.Millisecond
	return app, nil
}

// NewMGB builds the NPB MG class-B background load generator. It is
// not instrumented for migration (the paper uses it purely to occupy
// x86 cores).
func NewMGB() (*App, error) {
	app, _, err := newApp("MG-B", "KNL_HW_MG_B", buildMGKernel)
	if err != nil {
		return nil, err
	}
	app.Irregular = 0.05
	app.NonKernel = 20 * time.Millisecond
	app.Trips = calibrateTrips(app.PerIter, app.Irregular, measuredMGBx86, app.NonKernel)
	app.Migratable = false
	app.HWCapable = false
	return app, nil
}

// NewBFS builds the Section 4.4 BFS study application for an n-node
// graph: O(n^2) adjacency-matrix scans, cache-resident below ~1000
// nodes, irregular beyond.
func NewBFS(n int) (*App, error) {
	app, _, err := newApp(fmt.Sprintf("BFS-%d", n), "KNL_HW_BFS", buildBFSKernel)
	if err != nil {
		return nil, err
	}
	if n > 1000 {
		app.Irregular = 0.25
	}
	app.NonKernel = 0
	app.Trips = int64(n) * int64(n)
	// Dependent neighbour-distance reads serialise against HBM
	// latency; the kernel cannot pipeline the frontier scan.
	app.Spec.RecurrenceII = 160
	app.FPGAFixedOverhead = 195 * time.Millisecond
	app.BytesIn = int64(n) * int64(n) / 8
	app.BytesOut = int64(n) * 8
	app.WorkingSetBytes = int64(n) * int64(n) / 8
	return app, nil
}

// Registry returns the paper's five Table 1 benchmarks in order. Each
// application's build — kernel construction, the interpreter-driven
// profiling run, calibration — is independent of the others, so the
// builders fan across the worker pool; the returned order is fixed.
func Registry() ([]*App, error) {
	builders := []func() (*App, error){
		NewCGA, NewFaceDet320, NewFaceDet640, NewDigit500, NewDigit2000,
	}
	apps := make([]*App, len(builders))
	err := par.ForEach(len(builders), func(i int) error {
		a, err := builders[i]()
		if err != nil {
			return err
		}
		apps[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return apps, nil
}
