// Package hls models the high-level-synthesis step of the Xar-Trek
// compiler (step D in Fig. 1, performed by Xilinx Vitis in the paper):
// it maps a self-contained MIR function to a hardware kernel, producing
// a Xilinx-object (XO) equivalent that carries the kernel's FPGA
// resource utilisation and its pipeline timing (initiation interval and
// depth).
//
// The paper treats Vitis as an oracle returning exactly these
// quantities; this package computes them from the kernel's instruction
// profile with standard HLS first-order models.
package hls

import (
	"errors"
	"fmt"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/mir"
)

// HLS errors.
var (
	ErrNotSynthesizable = errors.New("hls: function is not synthesizable")
	ErrNoFunction       = errors.New("hls: kernel spec has no function")
)

// Resources is an FPGA resource vector.
type Resources struct {
	LUT  int
	FF   int
	BRAM int // 36Kb blocks
	DSP  int
}

// Add returns the element-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		LUT:  r.LUT + o.LUT,
		FF:   r.FF + o.FF,
		BRAM: r.BRAM + o.BRAM,
		DSP:  r.DSP + o.DSP,
	}
}

// FitsIn reports whether r fits inside budget.
func (r Resources) FitsIn(budget Resources) bool {
	return r.LUT <= budget.LUT && r.FF <= budget.FF &&
		r.BRAM <= budget.BRAM && r.DSP <= budget.DSP
}

// Scale returns r with every component multiplied by k.
func (r Resources) Scale(k int) Resources {
	return Resources{LUT: r.LUT * k, FF: r.FF * k, BRAM: r.BRAM * k, DSP: r.DSP * k}
}

// String implements fmt.Stringer.
func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d BRAM=%d DSP=%d", r.LUT, r.FF, r.BRAM, r.DSP)
}

// perOpResources is the synthesis cost of one spatial instance of an
// operation (rough Vitis-like numbers for 64-bit datapaths).
var perOpResources = map[isa.OpKind]Resources{
	isa.OpIntALU:   {LUT: 70, FF: 70},
	isa.OpIntMul:   {LUT: 120, FF: 150, DSP: 4},
	isa.OpIntDiv:   {LUT: 1800, FF: 2200},
	isa.OpFloatALU: {LUT: 450, FF: 600, DSP: 2},
	isa.OpFloatMul: {LUT: 220, FF: 350, DSP: 3},
	isa.OpFloatDiv: {LUT: 900, FF: 1400},
	isa.OpLoad:     {LUT: 90, FF: 110},
	isa.OpStore:    {LUT: 90, FF: 110},
	isa.OpBranch:   {LUT: 25, FF: 15},
	isa.OpCall:     {LUT: 40, FF: 40},
	isa.OpRet:      {LUT: 10, FF: 10},
	isa.OpMove:     {LUT: 20, FF: 30},
}

// pipeline latency in cycles of each op class at the target clock.
var perOpLatency = map[isa.OpKind]int{
	isa.OpIntALU:   1,
	isa.OpIntMul:   3,
	isa.OpIntDiv:   34,
	isa.OpFloatALU: 7,
	isa.OpFloatMul: 5,
	isa.OpFloatDiv: 28,
	isa.OpLoad:     2,
	isa.OpStore:    1,
	isa.OpBranch:   1,
	isa.OpCall:     2,
	isa.OpRet:      1,
	isa.OpMove:     0,
}

// KernelSpec describes one candidate function for hardware synthesis —
// the unit named in the profiling manifest (step A).
type KernelSpec struct {
	// Name is the hardware kernel name, e.g. "KNL_HW_FD320".
	Name string
	// Fn is the self-contained function to synthesize.
	Fn *mir.Function
	// TripCount is the number of inner-loop iterations one
	// invocation executes (from profiling).
	TripCount int64
	// Unroll is the requested spatial unroll factor (>=1).
	Unroll int
	// RecurrenceII is the minimum initiation interval forced by a
	// loop-carried dependency (e.g. a floating-point accumulator);
	// 0 means none detected.
	RecurrenceII int
	// MemoryPorts is the number of concurrent memory ports the
	// platform gives the kernel (HBM pseudo-channels); default 2.
	MemoryPorts int
	// LocalBufferBytes is data kept in on-chip BRAM/URAM.
	LocalBufferBytes int64
	// CUs replicates the kernel's compute unit so concurrent
	// invocations from different processes run in parallel — the
	// FPGA space-sharing extension the paper lists as future work
	// (Section 7). Default 1.
	CUs int
}

// XO is the synthesized hardware object for one kernel: the paper's
// Xilinx-object file (step D output).
type XO struct {
	KernelName string
	FuncName   string
	Res        Resources
	// II is the pipeline initiation interval in cycles.
	II int
	// Depth is the pipeline depth in cycles.
	Depth int
	// ClockMHz is the kernel clock.
	ClockMHz float64
	// TripCount is the per-invocation iteration count used for
	// latency estimation.
	TripCount int64
	// SizeBytes models the XO file size (per compute unit).
	SizeBytes int
	// CUs is the compute-unit replica count (0 behaves as 1). Res
	// and SizeBytes are per CU; packing scales by CUs.
	CUs int
}

// CUCount normalises the replica count.
func (x *XO) CUCount() int {
	if x.CUs < 1 {
		return 1
	}
	return x.CUs
}

// DefaultClockMHz is the kernel clock Vitis typically closes on Alveo
// U50 designs.
const DefaultClockMHz = 300

// Synthesizable checks the Vitis restrictions the paper cites: the
// function must be self-contained — no calls to functions with bodies
// outside the module, and only CPU/memory operations (which is all our
// IR can express). Recursive functions are rejected.
func Synthesizable(fn *mir.Function) error {
	if fn == nil {
		return ErrNoFunction
	}
	if len(fn.Blocks) == 0 {
		return fmt.Errorf("%w: %s is a declaration", ErrNotSynthesizable, fn.Nam)
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != mir.OpCall {
				continue
			}
			if in.Callee == fn {
				return fmt.Errorf("%w: %s is recursive", ErrNotSynthesizable, fn.Nam)
			}
			if len(in.Callee.Blocks) == 0 {
				return fmt.Errorf("%w: %s calls external %s", ErrNotSynthesizable, fn.Nam, in.Callee.Nam)
			}
			// Nested calls are allowed (Vitis inlines them), but
			// the callee must itself be synthesizable.
			if err := Synthesizable(in.Callee); err != nil {
				return err
			}
		}
	}
	return nil
}

// inlineMix flattens fn's static op mix, inlining callees.
func inlineMix(fn *mir.Function, depth int) isa.OpMix {
	mix := isa.OpMix{}
	if depth > 8 {
		return mix
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mir.OpCall && in.Callee != nil && len(in.Callee.Blocks) > 0 {
				mix = mix.Add(inlineMix(in.Callee, depth+1))
				continue
			}
			mix[in.Op.Kind()]++
		}
	}
	return mix
}

// EstimateResources computes the kernel's resource vector: one spatial
// instance per static operation, times the unroll factor, plus BRAM
// for local buffers (36Kb = 4.5KB per block).
func EstimateResources(spec KernelSpec) (Resources, error) {
	if err := Synthesizable(spec.Fn); err != nil {
		return Resources{}, err
	}
	unroll := spec.Unroll
	if unroll < 1 {
		unroll = 1
	}
	mix := inlineMix(spec.Fn, 0)
	var r Resources
	for k, n := range mix {
		r = r.Add(perOpResources[k].Scale(int(n)))
	}
	r = r.Scale(unroll)
	const bramBytes = 4608
	r.BRAM += int((spec.LocalBufferBytes + bramBytes - 1) / bramBytes)
	// Control logic overhead.
	r.LUT += 2000
	r.FF += 3000
	return r, nil
}

// Schedule computes the pipeline initiation interval and depth.
//
// II is bounded below by the memory-port pressure (loads+stores per
// iteration divided by available ports, divided by unroll) and by any
// loop-carried recurrence. Depth approximates the latency sum of one
// iteration's operation chain.
func Schedule(spec KernelSpec) (ii, depth int, err error) {
	if err := Synthesizable(spec.Fn); err != nil {
		return 0, 0, err
	}
	unroll := spec.Unroll
	if unroll < 1 {
		unroll = 1
	}
	ports := spec.MemoryPorts
	if ports < 1 {
		ports = 2
	}
	mix := inlineMix(spec.Fn, 0)
	memOps := mix[isa.OpLoad] + mix[isa.OpStore]
	memII := int((memOps + float64(ports) - 1) / float64(ports))
	if memII < 1 {
		memII = 1
	}
	// Unrolling amortises trip count, not port pressure (the ports
	// are shared), so the effective per-iteration II shrinks only
	// when the loop body is compute-bound.
	ii = memII
	if spec.RecurrenceII > ii {
		ii = spec.RecurrenceII
	}
	for k, n := range mix {
		depth += perOpLatency[k] * int(n)
	}
	if depth < 1 {
		depth = 1
	}
	return ii, depth, nil
}

// Compile synthesizes the kernel, producing its XO.
func Compile(spec KernelSpec) (*XO, error) {
	if spec.Fn == nil {
		return nil, ErrNoFunction
	}
	res, err := EstimateResources(spec)
	if err != nil {
		return nil, err
	}
	ii, depth, err := Schedule(spec)
	if err != nil {
		return nil, err
	}
	unroll := spec.Unroll
	if unroll < 1 {
		unroll = 1
	}
	name := spec.Name
	if name == "" {
		name = "KNL_HW_" + spec.Fn.Nam
	}
	return &XO{
		KernelName: name,
		FuncName:   spec.Fn.Nam,
		Res:        res,
		II:         ii,
		Depth:      depth,
		ClockMHz:   DefaultClockMHz,
		TripCount:  (spec.TripCount + int64(unroll) - 1) / int64(unroll),
		// XO container: netlist scales with resources.
		SizeBytes: 40_000 + res.LUT*14 + res.DSP*160,
		CUs:       spec.CUs,
	}, nil
}

// Latency is the kernel execution time for n pipeline iterations.
func (x *XO) Latency(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	cycles := float64(x.Depth) + float64(n)*float64(x.II)
	sec := cycles / (x.ClockMHz * 1e6)
	return time.Duration(sec * float64(time.Second))
}

// InvocationLatency is the kernel time for one invocation at the
// profiled trip count.
func (x *XO) InvocationLatency() time.Duration { return x.Latency(x.TripCount) }
