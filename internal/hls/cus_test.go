package hls

import (
	"testing"

	"xartrek/internal/mir"
)

// simpleKernel builds a minimal synthesizable loop function.
func simpleKernel(t *testing.T) *mir.Function {
	t.Helper()
	m := mir.NewModule("k")
	f, err := m.AddFunc("loop", mir.I64, mir.I64)
	if err != nil {
		t.Fatal(err)
	}
	b := mir.NewBuilder(f)
	entry := f.NewBlock("entry")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	b.SetBlock(entry)
	b.Br(body)

	b.SetBlock(body)
	i := b.Phi(mir.I64)
	acc := b.Phi(mir.I64)
	next := b.Add(i, mir.ConstInt(mir.I64, 1))
	sum := b.Add(acc, i)
	cond := b.ICmp(mir.CmpLT, next, f.Params[0])
	b.CondBr(cond, body, exit)
	mir.AddIncoming(i, mir.ConstInt(mir.I64, 0), entry)
	mir.AddIncoming(i, next, body)
	mir.AddIncoming(acc, mir.ConstInt(mir.I64, 0), entry)
	mir.AddIncoming(acc, sum, body)

	b.SetBlock(exit)
	b.Ret(acc)
	if err := mir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompilePropagatesCUs(t *testing.T) {
	xo, err := Compile(KernelSpec{Fn: simpleKernel(t), TripCount: 100, CUs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if xo.CUs != 3 || xo.CUCount() != 3 {
		t.Fatalf("CUs = %d/%d, want 3", xo.CUs, xo.CUCount())
	}
}

func TestCUCountDefaultsToOne(t *testing.T) {
	xo := &XO{}
	if xo.CUCount() != 1 {
		t.Fatalf("zero-value CU count = %d, want 1", xo.CUCount())
	}
	xo.CUs = -2
	if xo.CUCount() != 1 {
		t.Fatalf("negative CU count = %d, want 1", xo.CUCount())
	}
}

func TestReplicationDoesNotChangePerCUTiming(t *testing.T) {
	base, err := Compile(KernelSpec{Fn: simpleKernel(t), TripCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compile(KernelSpec{Fn: simpleKernel(t), TripCount: 100, CUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if base.II != rep.II || base.Depth != rep.Depth {
		t.Fatalf("replication changed the pipeline: %d/%d vs %d/%d",
			base.II, base.Depth, rep.II, rep.Depth)
	}
	if base.Res != rep.Res {
		t.Fatal("XO resources are per-CU and must not scale at compile time")
	}
}
