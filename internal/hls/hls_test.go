package hls

import (
	"errors"
	"testing"

	"xartrek/internal/mir"
)

// buildLoopKernel builds a simple streaming kernel: out[i] = in[i]*3+1.
func buildLoopKernel(t *testing.T) *mir.Function {
	t.Helper()
	m := mir.NewModule("k")
	f, err := m.AddFunc("saxpyish", mir.Void, mir.Ptr, mir.Ptr, mir.I64)
	if err != nil {
		t.Fatal(err)
	}
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	b := mir.NewBuilder(f)
	b.SetBlock(entry)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(mir.I64)
	b.CondBr(b.ICmp(mir.CmpLT, i, f.Params[2]), body, exit)
	b.SetBlock(body)
	off := b.Mul(i, mir.ConstInt(mir.I64, 8))
	v := b.Load(mir.I64, b.PtrAdd(f.Params[0], off))
	v3 := b.Mul(v, mir.ConstInt(mir.I64, 3))
	v31 := b.Add(v3, mir.ConstInt(mir.I64, 1))
	b.Store(v31, b.PtrAdd(f.Params[1], off))
	i2 := b.Add(i, mir.ConstInt(mir.I64, 1))
	b.Br(loop)
	b.SetBlock(exit)
	b.Ret(nil)
	mir.AddIncoming(i, mir.ConstInt(mir.I64, 0), entry)
	mir.AddIncoming(i, i2, body)
	if err := mir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func buildRecursive(t *testing.T) *mir.Function {
	t.Helper()
	m := mir.NewModule("r")
	f, err := m.AddFunc("rec", mir.I64, mir.I64)
	if err != nil {
		t.Fatal(err)
	}
	entry := f.NewBlock("entry")
	again := f.NewBlock("again")
	base := f.NewBlock("base")
	b := mir.NewBuilder(f)
	b.SetBlock(entry)
	b.CondBr(b.ICmp(mir.CmpLE, f.Params[0], mir.ConstInt(mir.I64, 0)), base, again)
	b.SetBlock(base)
	b.Ret(mir.ConstInt(mir.I64, 0))
	b.SetBlock(again)
	r := b.Call(f, b.Sub(f.Params[0], mir.ConstInt(mir.I64, 1)))
	b.Ret(r)
	if err := mir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSynthesizableAcceptsLoop(t *testing.T) {
	if err := Synthesizable(buildLoopKernel(t)); err != nil {
		t.Fatalf("loop kernel rejected: %v", err)
	}
}

func TestSynthesizableRejectsRecursion(t *testing.T) {
	if err := Synthesizable(buildRecursive(t)); !errors.Is(err, ErrNotSynthesizable) {
		t.Fatalf("recursion error = %v, want ErrNotSynthesizable", err)
	}
}

func TestSynthesizableRejectsNilAndDecl(t *testing.T) {
	if err := Synthesizable(nil); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("nil error = %v", err)
	}
	m := mir.NewModule("d")
	f, err := m.AddFunc("decl", mir.Void)
	if err != nil {
		t.Fatal(err)
	}
	if err := Synthesizable(f); !errors.Is(err, ErrNotSynthesizable) {
		t.Fatalf("decl error = %v", err)
	}
}

func TestEstimateResources(t *testing.T) {
	fn := buildLoopKernel(t)
	r1, err := EstimateResources(KernelSpec{Fn: fn})
	if err != nil {
		t.Fatal(err)
	}
	if r1.LUT <= 0 || r1.DSP <= 0 {
		t.Fatalf("resources = %v, want positive LUT and DSP (has multiplies)", r1)
	}
	// Unrolling multiplies spatial resources.
	r4, err := EstimateResources(KernelSpec{Fn: fn, Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.DSP != r1.DSP*4 {
		t.Fatalf("unroll-4 DSP = %d, want %d", r4.DSP, r1.DSP*4)
	}
	// Local buffers consume BRAM.
	rb, err := EstimateResources(KernelSpec{Fn: fn, LocalBufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rb.BRAM <= r1.BRAM {
		t.Fatal("local buffer did not add BRAM")
	}
}

func TestScheduleMemoryBound(t *testing.T) {
	fn := buildLoopKernel(t)
	ii, depth, err := Schedule(KernelSpec{Fn: fn, MemoryPorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One load + one store per iteration over one port: II >= 2.
	if ii < 2 {
		t.Fatalf("II = %d, want >= 2 on one port", ii)
	}
	if depth < ii {
		t.Fatalf("depth %d < II %d", depth, ii)
	}
	ii2, _, err := Schedule(KernelSpec{Fn: fn, MemoryPorts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ii2 > ii {
		t.Fatal("more ports increased II")
	}
}

func TestScheduleRecurrenceDominates(t *testing.T) {
	fn := buildLoopKernel(t)
	ii, _, err := Schedule(KernelSpec{Fn: fn, RecurrenceII: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ii != 9 {
		t.Fatalf("II = %d, want recurrence-bound 9", ii)
	}
}

func TestCompileAndLatency(t *testing.T) {
	fn := buildLoopKernel(t)
	xo, err := Compile(KernelSpec{Name: "KNL_HW_TEST", Fn: fn, TripCount: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if xo.KernelName != "KNL_HW_TEST" {
		t.Errorf("kernel name = %q", xo.KernelName)
	}
	if xo.ClockMHz != DefaultClockMHz {
		t.Errorf("clock = %v", xo.ClockMHz)
	}
	if xo.SizeBytes <= 40_000 {
		t.Error("XO size model not sensitive to resources")
	}
	l1 := xo.Latency(1000)
	l2 := xo.Latency(2000)
	if l2 <= l1 {
		t.Fatal("latency not increasing in trip count")
	}
	// Latency is affine: depth + n*II.
	if xo.InvocationLatency() != xo.Latency(xo.TripCount) {
		t.Fatal("InvocationLatency mismatch")
	}
	if xo.Latency(-1) != xo.Latency(0) {
		t.Fatal("negative trips not clamped")
	}
}

func TestCompileDefaultsName(t *testing.T) {
	fn := buildLoopKernel(t)
	xo, err := Compile(KernelSpec{Fn: fn, TripCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if xo.KernelName != "KNL_HW_saxpyish" {
		t.Fatalf("default name = %q", xo.KernelName)
	}
}

func TestCompileUnrollReducesTrips(t *testing.T) {
	fn := buildLoopKernel(t)
	plain, err := Compile(KernelSpec{Fn: fn, TripCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := Compile(KernelSpec{Fn: fn, TripCount: 1000, Unroll: 4})
	if err != nil {
		t.Fatal(err)
	}
	if unrolled.TripCount != 250 {
		t.Fatalf("unrolled trip count = %d, want 250", unrolled.TripCount)
	}
	_ = plain
}

func TestCompileRejectsRecursive(t *testing.T) {
	if _, err := Compile(KernelSpec{Fn: buildRecursive(t), TripCount: 5}); err == nil {
		t.Fatal("Compile accepted recursive function")
	}
	if _, err := Compile(KernelSpec{}); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("empty spec error = %v", err)
	}
}

func TestResourcesAlgebra(t *testing.T) {
	a := Resources{LUT: 10, FF: 20, BRAM: 1, DSP: 2}
	b := Resources{LUT: 5, FF: 5, BRAM: 1, DSP: 1}
	sum := a.Add(b)
	if sum != (Resources{LUT: 15, FF: 25, BRAM: 2, DSP: 3}) {
		t.Fatalf("Add = %v", sum)
	}
	if !b.FitsIn(a) {
		t.Fatal("b should fit in a")
	}
	if a.FitsIn(b) {
		t.Fatal("a should not fit in b")
	}
	if a.Scale(2) != (Resources{LUT: 20, FF: 40, BRAM: 2, DSP: 4}) {
		t.Fatalf("Scale = %v", a.Scale(2))
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}
