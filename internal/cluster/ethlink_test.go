package cluster

import (
	"testing"
	"time"

	"xartrek/internal/simtime"
)

func TestEthLinkSharesBandwidth(t *testing.T) {
	sim := simtime.New()
	c := New(sim)

	// Two concurrent 1-second transfers on the capacity-1 link take
	// 2 seconds each (processor sharing of the wire).
	var t1, t2 time.Duration
	c.EthLink.Submit(time.Second, func() { t1 = sim.Now() })
	c.EthLink.Submit(time.Second, func() { t2 = sim.Now() })
	sim.Run()
	if t1 != 2*time.Second || t2 != 2*time.Second {
		t.Fatalf("transfer completions = %v, %v; want 2s each", t1, t2)
	}
}

func TestEthLinkIsolatedTransferAtFullRate(t *testing.T) {
	sim := simtime.New()
	c := New(sim)
	work := c.Eth.TransferTime(26 << 20) // CG-A's working set
	var done time.Duration
	c.EthLink.Submit(work, func() { done = sim.Now() })
	sim.Run()
	if done != work {
		t.Fatalf("isolated transfer took %v, want %v", done, work)
	}
	// 26 MiB at 1 Gbps is on the order of 200 ms.
	if work < 150*time.Millisecond || work > 400*time.Millisecond {
		t.Fatalf("26 MiB transfer time %v implausible for 1 Gbps", work)
	}
}

func TestEthLinkIndependentFromCPUPools(t *testing.T) {
	sim := simtime.New()
	c := New(sim)
	// Saturate x86; link transfers must be unaffected.
	for i := 0; i < 60; i++ {
		c.X86.Exec(10*time.Second, nil)
	}
	var done time.Duration
	c.EthLink.Submit(100*time.Millisecond, func() { done = sim.Now() })
	sim.RunUntil(time.Second)
	if done != 100*time.Millisecond {
		t.Fatalf("link transfer took %v under CPU load, want 100ms", done)
	}
}
