// Package cluster models the evaluation hardware of the paper: a Dell
// 7920 x86 server (Xeon Bronze 3104, 6 cores, 1.7 GHz), a Cavium
// ThunderX ARM server (96 cores, 2 GHz), the 1 Gbps Ethernet between
// them, and the process-count load metric the Xar-Trek scheduler reads.
package cluster

import (
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
	"xartrek/internal/simtime"
)

// Machine describes one server's compute capability.
type Machine struct {
	Name  string
	Arch  isa.Arch
	Cores int
	Cost  *isa.CostModel
}

// X86Server returns the paper's x86 host (Xeon Bronze 3104).
func X86Server() Machine {
	return Machine{Name: "dell7920", Arch: isa.X86_64, Cores: 6, Cost: isa.X86CostModel()}
}

// ARMServer returns the paper's ARM server (Cavium ThunderX).
func ARMServer() Machine {
	return Machine{Name: "thunderx", Arch: isa.ARM64, Cores: 96, Cost: isa.ARMCostModel()}
}

// Node is a machine with its processor-sharing run queue.
type Node struct {
	Machine
	Pool *simtime.PSServer
}

// Exec runs work (exclusive single-core time) on the node; done fires
// at completion under the current multiprogramming level.
func (n *Node) Exec(work time.Duration, done func()) *simtime.PSJob {
	return n.Pool.Submit(work, done)
}

// Load reports the number of resident compute processes — the CPU-load
// metric the paper's scheduler samples (Section 4, Table 3).
func (n *Node) Load() int { return n.Pool.Active() }

// Cluster is the full evaluation platform.
type Cluster struct {
	Sim *simtime.Simulator
	X86 *Node
	ARM *Node
	// Eth is the server interconnect carrying Popcorn DSM and
	// migration traffic.
	Eth popcorn.NetModel
	// EthLink is the shared-capacity model of that interconnect:
	// concurrent transfers and DSM fault traffic divide the 1 Gbps
	// (processor-sharing with capacity 1). Submit link work as the
	// uncontended transfer time; completion reflects contention.
	EthLink *simtime.PSServer
}

// New assembles the paper's testbed on the given simulator.
func New(sim *simtime.Simulator) *Cluster {
	x86 := X86Server()
	arm := ARMServer()
	return &Cluster{
		Sim:     sim,
		X86:     &Node{Machine: x86, Pool: simtime.NewPSServer(sim, float64(x86.Cores))},
		ARM:     &Node{Machine: arm, Pool: simtime.NewPSServer(sim, float64(arm.Cores))},
		Eth:     popcorn.EthernetGbps1(),
		EthLink: simtime.NewPSServer(sim, 1),
	}
}

// TotalCores reports the platform core count (6 + 96 = 102).
func (c *Cluster) TotalCores() int { return c.X86.Cores + c.ARM.Cores }

// LoadClass is the paper's Table 3 classification.
type LoadClass int

// Load classes per Table 3.
const (
	LoadLow LoadClass = iota + 1
	LoadMedium
	LoadHigh
)

// String implements fmt.Stringer.
func (l LoadClass) String() string {
	switch l {
	case LoadLow:
		return "low"
	case LoadMedium:
		return "medium"
	case LoadHigh:
		return "high"
	default:
		return "unknown"
	}
}

// ClassifyLoad maps a process count to Table 3's ranges.
func (c *Cluster) ClassifyLoad(processes int) LoadClass {
	switch {
	case processes < c.X86.Cores:
		return LoadLow
	case processes <= c.TotalCores():
		return LoadMedium
	default:
		return LoadHigh
	}
}
