// Package cluster models the evaluation hardware as a configurable
// heterogeneous topology: N CPU servers of mixed ISA classes with
// per-machine core counts and cost models, M FPGA devices, and a
// per-pair interconnect model, plus the process-count load metric the
// Xar-Trek scheduler reads. The paper's fixed testbed — a Dell 7920 x86
// server (Xeon Bronze 3104, 6 cores, 1.7 GHz), a Cavium ThunderX ARM
// server (96 cores, 2 GHz), one Alveo U50 and the 1 Gbps Ethernet
// between the servers — is just the default, PaperTopology().
package cluster

import (
	"fmt"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
	"xartrek/internal/simtime"
)

// Machine describes one server's compute capability.
type Machine struct {
	Name  string
	Arch  isa.Arch
	Cores int
	Cost  *isa.CostModel
}

// X86Server returns the paper's x86 host (Xeon Bronze 3104).
func X86Server() Machine {
	return Machine{Name: "dell7920", Arch: isa.X86_64, Cores: 6, Cost: isa.X86CostModel()}
}

// ARMServer returns the paper's ARM server (Cavium ThunderX).
func ARMServer() Machine {
	return Machine{Name: "thunderx", Arch: isa.ARM64, Cores: 96, Cost: isa.ARMCostModel()}
}

// Node is a machine with its processor-sharing run queue.
type Node struct {
	Machine
	Pool *simtime.PSServer
	// Index is the node's position in Cluster.Nodes — the identifier
	// the scheduler's placement step uses.
	Index int
}

// Exec runs work (exclusive single-core time) on the node; done fires
// at completion under the current multiprogramming level.
func (n *Node) Exec(work time.Duration, done func()) *simtime.PSJob {
	return n.Pool.Submit(work, done)
}

// ExecTransient is Exec without a handle: the job cannot be cancelled,
// and the pool recycles its struct after completion. The allocation-
// free path for callers that discard Exec's return value.
func (n *Node) ExecTransient(work time.Duration, done func()) {
	n.Pool.SubmitTransient(work, done)
}

// Load reports the number of resident compute processes — the CPU-load
// metric the paper's scheduler samples (Section 4, Table 3).
func (n *Node) Load() int { return n.Pool.Active() }

// Link is the shared-capacity model of one node-pair interconnect:
// concurrent transfers and DSM fault traffic divide the link bandwidth
// (processor-sharing with capacity 1). Submit link work as the
// uncontended transfer time; completion reflects contention.
type Link struct {
	Net popcorn.NetModel
	PS  *simtime.PSServer
}

// Submit places one transfer of the given uncontended duration on the
// link.
func (l *Link) Submit(work time.Duration, done func()) *simtime.PSJob {
	return l.PS.Submit(work, done)
}

// SubmitTransient is Submit without a handle: the transfer cannot be
// cancelled, and the link recycles its job struct after completion.
func (l *Link) SubmitTransient(work time.Duration, done func()) {
	l.PS.SubmitTransient(work, done)
}

// Queued reports the number of transfers currently in flight on the
// link. Concurrent transfers divide the link's bandwidth, so a
// placement policy weighing transfer time should inflate its estimate
// by the occupancy.
func (l *Link) Queued() int { return l.PS.Active() }

// Transfer estimates the uncontended time to move n bytes over the
// link (LinkSpec overrides included).
func (l *Link) Transfer(n int64) time.Duration { return l.Net.TransferTime(n) }

// linkKey identifies an unordered node pair by index.
type linkKey struct{ lo, hi int }

// Cluster is a topology materialised on a simulator: every node gets a
// processor-sharing run queue and every node pair a shared link.
type Cluster struct {
	Sim  *simtime.Simulator
	Topo Topology
	// Nodes holds every CPU node in topology order.
	Nodes []*Node
	// X86 is the scheduler host — the first x86-class node. Processes
	// start here and the paper's load metric samples it.
	X86 *Node
	// ARM is the first ARM-class node (nil in CPU-homogeneous
	// topologies); the single-ARM-server view of the paper testbed.
	ARM *Node
	// Eth is the interconnect model between the host and ARM (the
	// paper's 1 Gbps Ethernet); DefaultNet when no ARM node exists.
	Eth popcorn.NetModel
	// EthLink is the host-ARM shared link, nil without an ARM node.
	EthLink *simtime.PSServer
	links   map[linkKey]*Link
	// byArch caches the per-ISA-class node lists (topology order).
	// Topologies are immutable once materialised, so the serving front
	// end's per-arrival least-loaded scan reads a prebuilt slice
	// instead of filtering — and allocating — on every request.
	byArch map[isa.Arch][]*Node
}

// New assembles the paper's testbed on the given simulator.
func New(sim *simtime.Simulator) *Cluster {
	c, err := FromTopology(sim, PaperTopology())
	if err != nil {
		// PaperTopology is statically valid.
		panic("cluster: paper topology invalid: " + err.Error())
	}
	return c
}

// FromTopology materialises a topology on the simulator.
func FromTopology(sim *simtime.Simulator, topo Topology) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Sim: sim, Topo: topo, links: make(map[linkKey]*Link), byArch: make(map[isa.Arch][]*Node)}
	for i, spec := range topo.Nodes {
		m, err := spec.machine()
		if err != nil {
			return nil, err
		}
		n := &Node{Machine: m, Pool: simtime.NewPSServer(sim, float64(m.Cores)), Index: i}
		c.Nodes = append(c.Nodes, n)
		c.byArch[m.Arch] = append(c.byArch[m.Arch], n)
		if c.X86 == nil && m.Arch == isa.X86_64 {
			c.X86 = n
		}
		if c.ARM == nil && m.Arch == isa.ARM64 {
			c.ARM = n
		}
	}
	// Materialise every node-pair link eagerly and in index order so
	// construction is deterministic regardless of topology size.
	overrides := make(map[linkKey]popcorn.NetModel, len(topo.Links))
	byName := make(map[string]int, len(topo.Nodes))
	for i, spec := range topo.Nodes {
		byName[spec.Name] = i
	}
	for _, l := range topo.Links {
		a, b := byName[l.A], byName[l.B]
		overrides[pairKey(a, b)] = l.Net
	}
	for i := range c.Nodes {
		for j := i + 1; j < len(c.Nodes); j++ {
			key := pairKey(i, j)
			net := topo.DefaultNet
			if o, ok := overrides[key]; ok {
				net = o
			}
			c.links[key] = &Link{Net: net, PS: simtime.NewPSServer(sim, 1)}
		}
	}
	c.Eth = topo.DefaultNet
	if c.ARM != nil {
		hostARM := c.Link(c.X86, c.ARM)
		c.Eth = hostARM.Net
		c.EthLink = hostARM.PS
	}
	return c, nil
}

// pairKey normalises an unordered index pair.
func pairKey(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{lo: a, hi: b}
}

// Link returns the shared interconnect between two nodes.
func (c *Cluster) Link(a, b *Node) *Link {
	if a.Index == b.Index {
		panic(fmt.Sprintf("cluster: self-link on node %s", a.Name))
	}
	return c.links[pairKey(a.Index, b.Index)]
}

// TransferEstimate is the cluster's transfer-cost query surface:
// the estimated uncontended time to move n bytes between two nodes
// over their pair link, resolving any LinkSpec override. The payload
// is whatever a policy is costing — a migration's DSM working set, a
// state-transformation snapshot, or an XCLBIN image staged to a remote
// host. A same-node "transfer" costs zero (no link is crossed).
// Contention is not folded in; combine with Link.Queued when the
// current occupancy matters.
func (c *Cluster) TransferEstimate(a, b *Node, n int64) time.Duration {
	if a.Index == b.Index {
		return 0
	}
	return c.Link(a, b).Transfer(n)
}

// NodesOfArch lists the nodes of one ISA class in topology order.
// The returned slice is the cluster's cached copy; callers must not
// mutate it.
func (c *Cluster) NodesOfArch(arch isa.Arch) []*Node {
	return c.byArch[arch]
}

// TotalCores reports the CPU core count across all nodes (the paper
// testbed's 6 + 96 = 102).
func (c *Cluster) TotalCores() int { return c.Topo.TotalCPUCores() }

// LoadClass is the paper's Table 3 classification.
type LoadClass int

// Load classes per Table 3.
const (
	LoadLow LoadClass = iota + 1
	LoadMedium
	LoadHigh
)

// String implements fmt.Stringer.
func (l LoadClass) String() string {
	switch l {
	case LoadLow:
		return "low"
	case LoadMedium:
		return "medium"
	case LoadHigh:
		return "high"
	default:
		return "unknown"
	}
}

// ClassifyLoad maps a process count to Table 3's ranges, generalised to
// the topology's core counts: low below the x86-class core count,
// medium up to the total CPU core count, high beyond.
func (c *Cluster) ClassifyLoad(processes int) LoadClass {
	switch {
	case processes < c.Topo.CoresOfArch(isa.X86_64):
		return LoadLow
	case processes <= c.TotalCores():
		return LoadMedium
	default:
		return LoadHigh
	}
}
