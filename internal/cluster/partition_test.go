package cluster

import (
	"testing"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
)

func TestPartitionScaleOutEvenSplit(t *testing.T) {
	topo := ScaleOutTopology("rack256", 64, 192, 32)
	shards, err := PartitionTopology(topo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("got %d shards, want 8", len(shards))
	}
	for i, s := range shards {
		if got := s.CountOfArch(isa.X86_64); got != 8 {
			t.Errorf("shard %d: %d x86 nodes, want 8", i, got)
		}
		if got := s.CountOfArch(isa.ARM64); got != 24 {
			t.Errorf("shard %d: %d ARM nodes, want 24", i, got)
		}
		if got := len(s.FPGAs); got != 4 {
			t.Errorf("shard %d: %d FPGAs, want 4", i, got)
		}
	}
	// Shard 0 keeps the original scheduler host first, and every node
	// lands in exactly one shard.
	if shards[0].Nodes[0].Name != topo.Nodes[0].Name {
		t.Errorf("shard 0 entry = %q, want original host %q",
			shards[0].Nodes[0].Name, topo.Nodes[0].Name)
	}
	seen := map[string]int{}
	for _, s := range shards {
		for _, n := range s.Nodes {
			seen[n.Name]++
		}
	}
	if len(seen) != len(topo.Nodes) {
		t.Fatalf("shards cover %d nodes, topology has %d", len(seen), len(topo.Nodes))
	}
	for name, c := range seen {
		if c != 1 {
			t.Errorf("node %q appears in %d shards", name, c)
		}
	}
}

func TestPartitionUnevenRemainder(t *testing.T) {
	topo := ScaleOutTopology("rack", 5, 7, 3)
	shards, err := PartitionTopology(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Strided assignment: earlier shards take the remainder.
	wantX86, wantARM, wantFPGA := []int{3, 2}, []int{4, 3}, []int{2, 1}
	for i, s := range shards {
		if got := s.CountOfArch(isa.X86_64); got != wantX86[i] {
			t.Errorf("shard %d: %d x86, want %d", i, got, wantX86[i])
		}
		if got := s.CountOfArch(isa.ARM64); got != wantARM[i] {
			t.Errorf("shard %d: %d ARM, want %d", i, got, wantARM[i])
		}
		if got := len(s.FPGAs); got != wantFPGA[i] {
			t.Errorf("shard %d: %d FPGAs, want %d", i, got, wantFPGA[i])
		}
	}
}

// TestPartitionCrossRackKeepsRackMix pins the rack-alignment rule:
// every shard of a cross-rack topology gets both near and far ARM
// capacity, and the slow cross-rack link overrides survive for pairs
// inside the shard.
func TestPartitionCrossRackKeepsRackMix(t *testing.T) {
	cross := popcorn.NetModel{LatencyRTT: 2 * time.Millisecond, BandwidthBps: 12.5e6}
	topo := CrossRackTopology("xrack", 4, 4, 4, 2, cross)
	shards, err := PartitionTopology(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		near, far := 0, 0
		for _, n := range s.Nodes {
			if n.Arch != isa.ARM64 {
				continue
			}
			if len(n.Name) >= 4 && n.Name[:4] == "arma" {
				near++
			} else {
				far++
			}
		}
		if near != 2 || far != 2 {
			t.Errorf("shard %d: near/far = %d/%d, want 2/2", i, near, far)
		}
		if len(s.Links) == 0 {
			t.Errorf("shard %d lost all cross-rack link overrides", i)
		}
		for _, l := range s.Links {
			if s.NetBetween(l.A, l.B) == s.DefaultNet {
				t.Errorf("shard %d: link %s-%s lost its override", i, l.A, l.B)
			}
		}
		if err := s.Validate(); err != nil {
			t.Errorf("shard %d invalid: %v", i, err)
		}
	}
}

func TestPartitionSingleShardIsWholeTopology(t *testing.T) {
	topo := ScaleOutTopology("rack8", 2, 4, 2)
	shards, err := PartitionTopology(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 {
		t.Fatalf("got %d shards, want 1", len(shards))
	}
	s := shards[0]
	if len(s.Nodes) != len(topo.Nodes) || len(s.FPGAs) != len(topo.FPGAs) {
		t.Fatalf("single shard dropped members: %d/%d nodes, %d/%d FPGAs",
			len(s.Nodes), len(topo.Nodes), len(s.FPGAs), len(topo.FPGAs))
	}
	for i, n := range s.Nodes {
		if n.Name != topo.Nodes[i].Name {
			t.Fatalf("node order changed at %d: %q vs %q", i, n.Name, topo.Nodes[i].Name)
		}
	}
}

func TestPartitionRejectsBadShardCounts(t *testing.T) {
	topo := ScaleOutTopology("rack8", 2, 4, 2)
	if _, err := PartitionTopology(topo, 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := PartitionTopology(topo, 3); err == nil {
		t.Error("more shards than entry nodes accepted")
	}
	if _, err := PartitionTopology(PaperTopology(), 2); err == nil {
		t.Error("paper topology split past its single entry node")
	}
}
