package cluster

import (
	"testing"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/simtime"
)

func TestNewClusterMatchesTestbed(t *testing.T) {
	c := New(simtime.New())
	if c.X86.Cores != 6 || c.X86.Arch != isa.X86_64 {
		t.Fatalf("x86 node = %+v", c.X86.Machine)
	}
	if c.ARM.Cores != 96 || c.ARM.Arch != isa.ARM64 {
		t.Fatalf("arm node = %+v", c.ARM.Machine)
	}
	if c.TotalCores() != 102 {
		t.Fatalf("total cores = %d, want 102", c.TotalCores())
	}
}

func TestClassifyLoadTable3(t *testing.T) {
	c := New(simtime.New())
	tests := []struct {
		procs int
		want  LoadClass
	}{
		{1, LoadLow},
		{5, LoadLow},
		{6, LoadMedium}, // not strictly less than #x86 cores
		{60, LoadMedium},
		{102, LoadMedium},
		{103, LoadHigh},
		{160, LoadHigh},
	}
	for _, tt := range tests {
		if got := c.ClassifyLoad(tt.procs); got != tt.want {
			t.Errorf("ClassifyLoad(%d) = %v, want %v", tt.procs, got, tt.want)
		}
	}
}

func TestLoadClassString(t *testing.T) {
	if LoadLow.String() != "low" || LoadMedium.String() != "medium" || LoadHigh.String() != "high" {
		t.Fatal("LoadClass strings wrong")
	}
	if LoadClass(0).String() != "unknown" {
		t.Fatal("zero LoadClass not unknown")
	}
}

func TestNodeExecAndLoad(t *testing.T) {
	sim := simtime.New()
	c := New(sim)
	if c.X86.Load() != 0 {
		t.Fatal("fresh node has load")
	}
	done := 0
	for i := 0; i < 12; i++ {
		c.X86.Exec(time.Second, func() { done++ })
	}
	if c.X86.Load() != 12 {
		t.Fatalf("load = %d, want 12", c.X86.Load())
	}
	sim.Run()
	if done != 12 {
		t.Fatalf("completions = %d, want 12", done)
	}
	// 12 jobs of 1s on 6 cores take ~2s.
	if sim.Now() < 1900*time.Millisecond || sim.Now() > 2100*time.Millisecond {
		t.Fatalf("makespan = %v, want ~2s", sim.Now())
	}
}

func TestARMManyCoreAbsorbsLoad(t *testing.T) {
	sim := simtime.New()
	c := New(sim)
	var last time.Duration
	for i := 0; i < 96; i++ {
		c.ARM.Exec(time.Second, func() { last = sim.Now() })
	}
	sim.Run()
	// 96 cores run 96 jobs with no slowdown.
	if last != time.Second {
		t.Fatalf("96 jobs on 96 cores finished at %v, want 1s", last)
	}
}
