package cluster

import (
	"strings"
	"testing"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
	"xartrek/internal/simtime"
)

func TestPaperTopologyMatchesFixedTestbed(t *testing.T) {
	c, err := FromTopology(simtime.New(), PaperTopology())
	if err != nil {
		t.Fatal(err)
	}
	// The topology-built cluster must be indistinguishable from the
	// historical fixed testbed New() returns.
	if c.X86 == nil || c.X86.Name != "dell7920" || c.X86.Cores != 6 || c.X86.Arch != isa.X86_64 {
		t.Fatalf("x86 host = %+v", c.X86)
	}
	if c.ARM == nil || c.ARM.Name != "thunderx" || c.ARM.Cores != 96 || c.ARM.Arch != isa.ARM64 {
		t.Fatalf("arm node = %+v", c.ARM)
	}
	if c.TotalCores() != 102 {
		t.Fatalf("total cores = %d, want 102", c.TotalCores())
	}
	if c.EthLink == nil {
		t.Fatal("no host-ARM link")
	}
	want := popcorn.EthernetGbps1()
	if c.Eth != want {
		t.Fatalf("Eth = %+v, want %+v", c.Eth, want)
	}
	if got := c.Link(c.X86, c.ARM); got.PS != c.EthLink || got.Net != c.Eth {
		t.Fatal("Link(x86, arm) is not the EthLink compatibility view")
	}
	if len(PaperTopology().FPGAs) != 1 {
		t.Fatal("paper topology should carry one FPGA")
	}
}

func TestScaleOutTopologyShape(t *testing.T) {
	topo := ScaleOutTopology("rack32", 8, 24, 4)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := len(topo.Nodes); n != 32 {
		t.Fatalf("nodes = %d, want 32", n)
	}
	if n := len(topo.FPGAs); n != 4 {
		t.Fatalf("fpgas = %d, want 4", n)
	}
	if got := topo.CoresOfArch(isa.X86_64); got != 48 {
		t.Fatalf("x86 cores = %d, want 48", got)
	}
	if got := topo.CoresOfArch(isa.ARM64); got != 24*96 {
		t.Fatalf("arm cores = %d, want %d", got, 24*96)
	}
	c, err := FromTopology(simtime.New(), topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.NodesOfArch(isa.ARM64)) != 24 {
		t.Fatalf("materialised ARM nodes = %d", len(c.NodesOfArch(isa.ARM64)))
	}
	// Node order and indices are stable.
	for i, n := range c.Nodes {
		if n.Index != i {
			t.Fatalf("node %s has index %d at position %d", n.Name, n.Index, i)
		}
	}
	// Every distinct pair has a link; both argument orders agree.
	a, b := c.Nodes[3], c.Nodes[17]
	if c.Link(a, b) == nil || c.Link(a, b) != c.Link(b, a) {
		t.Fatal("pair links missing or order-dependent")
	}
}

func TestTopologyValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		want string
	}{
		{"empty", Topology{Name: "e"}, "no nodes"},
		{"dup-node", Topology{Name: "d", Nodes: []NodeSpec{
			{Name: "n", Arch: isa.X86_64, Cores: 1},
			{Name: "n", Arch: isa.ARM64, Cores: 1},
		}}, "duplicate node"},
		{"no-x86", Topology{Name: "a", Nodes: []NodeSpec{
			{Name: "n", Arch: isa.ARM64, Cores: 1},
		}}, "no x86 node"},
		{"zero-cores", Topology{Name: "z", Nodes: []NodeSpec{
			{Name: "n", Arch: isa.X86_64, Cores: 0},
		}}, "cores"},
		{"bad-link", Topology{Name: "l",
			Nodes: []NodeSpec{{Name: "n", Arch: isa.X86_64, Cores: 1}},
			Links: []LinkSpec{{A: "n", B: "ghost"}},
		}, "unknown node"},
		{"dup-fpga", Topology{Name: "f",
			Nodes: []NodeSpec{{Name: "n", Arch: isa.X86_64, Cores: 1}},
			FPGAs: []FPGASpec{{Name: "u50"}, {Name: "u50"}},
		}, "duplicate FPGA"},
	}
	for _, tc := range cases {
		err := tc.topo.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestLinkOverrideApplies(t *testing.T) {
	fast := popcorn.NetModel{LatencyRTT: 10 * time.Microsecond, BandwidthBps: 1.25e9}
	topo := Topology{
		Name: "mixed",
		Nodes: []NodeSpec{
			{Name: "h", Arch: isa.X86_64, Cores: 6},
			{Name: "a0", Arch: isa.ARM64, Cores: 96},
			{Name: "a1", Arch: isa.ARM64, Cores: 96},
		},
		DefaultNet: popcorn.EthernetGbps1(),
		Links:      []LinkSpec{{A: "a1", B: "h", Net: fast}},
	}
	c, err := FromTopology(simtime.New(), topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Link(c.Nodes[0], c.Nodes[2]).Net; got != fast {
		t.Fatalf("override link = %+v, want %+v", got, fast)
	}
	if got := c.Link(c.Nodes[0], c.Nodes[1]).Net; got != popcorn.EthernetGbps1() {
		t.Fatalf("default link = %+v", got)
	}
}

func TestClassifyLoadScalesWithTopology(t *testing.T) {
	c, err := FromTopology(simtime.New(), ScaleOutTopology("r", 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 12 x86 cores, 108 total.
	if got := c.ClassifyLoad(11); got != LoadLow {
		t.Fatalf("ClassifyLoad(11) = %v, want low", got)
	}
	if got := c.ClassifyLoad(108); got != LoadMedium {
		t.Fatalf("ClassifyLoad(108) = %v, want medium", got)
	}
	if got := c.ClassifyLoad(109); got != LoadHigh {
		t.Fatalf("ClassifyLoad(109) = %v, want high", got)
	}
}
