package cluster

import (
	"testing"
	"time"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
	"xartrek/internal/simtime"
)

func slowNet() popcorn.NetModel {
	return popcorn.NetModel{LatencyRTT: 2 * time.Millisecond, BandwidthBps: 12.5e6}
}

func TestCrossRackTopologyShape(t *testing.T) {
	topo := CrossRackTopology("xrack", 2, 1, 2, 3, slowNet())
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Nodes); got != 5 {
		t.Fatalf("nodes = %d, want 5", got)
	}
	if got := len(topo.FPGAs); got != 3 {
		t.Fatalf("FPGAs = %d, want 3", got)
	}
	// Every rack-A node (2 x86 + 1 near ARM) pairs with every rack-B
	// node (2 far ARM) over the slow model.
	if got := len(topo.Links); got != 6 {
		t.Fatalf("link overrides = %d, want 6 (3 rack-A × 2 rack-B)", got)
	}
	if got := topo.CoresOfArch(isa.ARM64); got != 3*96 {
		t.Fatalf("ARM cores = %d, want %d", got, 3*96)
	}
}

func TestNetBetweenResolvesOverrides(t *testing.T) {
	topo := CrossRackTopology("xrack", 1, 1, 1, 0, slowNet())
	// Cross-rack pair: the override, in either orientation.
	if nm := topo.NetBetween("x86-00", "armb-00"); nm != slowNet() {
		t.Fatalf("x86↔far = %+v, want slow override", nm)
	}
	if nm := topo.NetBetween("armb-00", "x86-00"); nm != slowNet() {
		t.Fatalf("reversed orientation lost the override: %+v", nm)
	}
	// In-rack pair: the default net.
	if nm := topo.NetBetween("x86-00", "arma-00"); nm != popcorn.EthernetGbps1() {
		t.Fatalf("in-rack pair = %+v, want default 1 Gbps", nm)
	}
	// Unknown pair: still the default (NetBetween is a spec-level
	// query, not a validator).
	if nm := topo.NetBetween("x86-00", "ghost"); nm != popcorn.EthernetGbps1() {
		t.Fatalf("unknown pair = %+v, want default", nm)
	}
}

func TestTransferEstimateWeighsLinkSpec(t *testing.T) {
	sim := simtime.New()
	c, err := FromTopology(sim, CrossRackTopology("xrack", 1, 1, 1, 0, slowNet()))
	if err != nil {
		t.Fatal(err)
	}
	host := c.X86
	var near, far *Node
	for _, n := range c.NodesOfArch(isa.ARM64) {
		switch n.Name {
		case "arma-00":
			near = n
		case "armb-00":
			far = n
		}
	}
	const bytes = 26 << 20 // a CG-A working set
	fast := c.TransferEstimate(host, near, bytes)
	slow := c.TransferEstimate(host, far, bytes)
	if fast >= slow {
		t.Fatalf("near transfer %v not below far %v", fast, slow)
	}
	// 1 Gbps vs 100 Mbps: the far estimate is ~10x the near one.
	if slow < 9*fast {
		t.Fatalf("far/near ratio = %.1f, want ≈10", float64(slow)/float64(fast))
	}
	if want := slowNet().TransferTime(bytes); slow != want {
		t.Fatalf("far estimate %v != LinkSpec model %v", slow, want)
	}
}

func TestLinkQueuedTracksInFlightTransfers(t *testing.T) {
	sim := simtime.New()
	c, err := FromTopology(sim, PaperTopology())
	if err != nil {
		t.Fatal(err)
	}
	link := c.Link(c.X86, c.ARM)
	if got := link.Queued(); got != 0 {
		t.Fatalf("idle link Queued = %d, want 0", got)
	}
	done := 0
	link.Submit(time.Second, func() { done++ })
	link.Submit(time.Second, func() { done++ })
	if got := link.Queued(); got != 2 {
		t.Fatalf("Queued = %d, want 2", got)
	}
	sim.Run()
	if done != 2 || link.Queued() != 0 {
		t.Fatalf("after drain: done=%d queued=%d", done, link.Queued())
	}
}
