package cluster

import (
	"fmt"

	"xartrek/internal/isa"
)

// CountOfArch reports the number of nodes of the given ISA class.
func (t Topology) CountOfArch(arch isa.Arch) int {
	count := 0
	for _, n := range t.Nodes {
		if n.Arch == arch {
			count++
		}
	}
	return count
}

// PartitionTopology splits a topology into n independent sub-fleets
// for sharded serving: shard i receives every node whose index within
// its ISA class is congruent to i mod n, and likewise for FPGA cards.
// Striding by class (rather than slicing the node list) keeps each
// shard a miniature of the whole fleet: a cross-rack topology's shards
// each get their proportional share of near and far ARM capacity, so
// per-shard placement sees the same rack mix the unsharded scheduler
// saw.
//
// Node and card order inside a shard preserves topology order, so the
// first x86 node of shard 0 is the original scheduler host and
// placement tie-breaks stay deterministic. Link overrides survive when
// both endpoints land in the same shard; pairs split across shards can
// never exchange traffic in a shard simulation, so their overrides are
// dropped.
//
// n must be between 1 and the number of x86-class entry nodes — every
// shard needs an entry node to host its scheduler.
func PartitionTopology(t Topology, n int) ([]Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: cannot partition %q into %d shards", t.Name, n)
	}
	if entries := t.CountOfArch(isa.X86_64); n > entries {
		return nil, fmt.Errorf("cluster: %d shards exceed the %d entry nodes of %q",
			n, entries, t.Name)
	}

	shards := make([]Topology, n)
	member := make(map[string]int, len(t.Nodes))
	for i := range shards {
		shards[i] = Topology{
			Name:       fmt.Sprintf("%s/s%d", t.Name, i),
			DefaultNet: t.DefaultNet,
		}
	}
	classIdx := make(map[isa.Arch]int, 2)
	for _, node := range t.Nodes {
		shard := classIdx[node.Arch] % n
		classIdx[node.Arch]++
		shards[shard].Nodes = append(shards[shard].Nodes, node)
		member[node.Name] = shard
	}
	for i, card := range t.FPGAs {
		shards[i%n].FPGAs = append(shards[i%n].FPGAs, card)
	}
	for _, l := range t.Links {
		sa, oka := member[l.A]
		sb, okb := member[l.B]
		if oka && okb && sa == sb {
			shards[sa].Links = append(shards[sa].Links, l)
		}
	}
	for i := range shards {
		if err := shards[i].Validate(); err != nil {
			return nil, err
		}
	}
	return shards, nil
}
