package cluster

import (
	"fmt"

	"xartrek/internal/isa"
	"xartrek/internal/popcorn"
)

// NodeSpec describes one CPU server of a topology: its ISA class, core
// count and cost model. A nil Cost selects the default model for the
// architecture (the paper's Xeon Bronze 3104 or Cavium ThunderX
// calibration).
type NodeSpec struct {
	Name  string
	Arch  isa.Arch
	Cores int
	Cost  *isa.CostModel
}

// FPGASpec describes one accelerator card of a topology. Cards are
// PCIe-attached to the scheduler host; the device model itself lives in
// packages fpga/xrt and is instantiated per experiment platform.
type FPGASpec struct {
	Name string
}

// LinkSpec overrides the interconnect between one unordered pair of
// named nodes. Pairs without an override use the topology's DefaultNet.
type LinkSpec struct {
	A, B string
	Net  popcorn.NetModel
}

// Topology is a configurable heterogeneous cluster: N CPU nodes of
// mixed ISA classes, M FPGA devices, and a per-pair link model. The
// paper's fixed testbed is PaperTopology(); scale-out variants are
// built with ScaleOutTopology or assembled by hand.
//
// Conventions the scheduler and experiment engine rely on:
//
//   - the first x86-class node is the scheduler host (processes start
//     there, the load metric samples it),
//   - node order is significant and deterministic: placement ties break
//     toward the lower index,
//   - every FPGA is reachable from the host over PCIe.
type Topology struct {
	Name  string
	Nodes []NodeSpec
	FPGAs []FPGASpec
	// DefaultNet is the interconnect model for any node pair without a
	// LinkSpec override (the paper's shared 1 Gbps Ethernet).
	DefaultNet popcorn.NetModel
	Links      []LinkSpec
}

// PaperTopology returns the paper's Section 4 testbed: one Dell 7920
// x86 host, one Cavium ThunderX ARM server, one Alveo U50, 1 Gbps
// Ethernet between the servers.
func PaperTopology() Topology {
	return Topology{
		Name: "paper",
		Nodes: []NodeSpec{
			{Name: "dell7920", Arch: isa.X86_64, Cores: 6},
			{Name: "thunderx", Arch: isa.ARM64, Cores: 96},
		},
		FPGAs:      []FPGASpec{{Name: "alveo-u50"}},
		DefaultNet: popcorn.EthernetGbps1(),
	}
}

// ScaleOutTopology builds a homogeneous-rack scale-out of the paper
// testbed: nX86 copies of the x86 host, nARM copies of the ARM server
// and nFPGA accelerator cards, all pairs joined by the default 1 Gbps
// Ethernet. Node names are deterministic (x86-00, arm-00, fpga-00, ...)
// so experiment output is stable.
func ScaleOutTopology(name string, nX86, nARM, nFPGA int) Topology {
	t := Topology{Name: name, DefaultNet: popcorn.EthernetGbps1()}
	for i := 0; i < nX86; i++ {
		t.Nodes = append(t.Nodes, NodeSpec{
			Name: fmt.Sprintf("x86-%02d", i), Arch: isa.X86_64, Cores: 6,
		})
	}
	for i := 0; i < nARM; i++ {
		t.Nodes = append(t.Nodes, NodeSpec{
			Name: fmt.Sprintf("arm-%02d", i), Arch: isa.ARM64, Cores: 96,
		})
	}
	for i := 0; i < nFPGA; i++ {
		t.FPGAs = append(t.FPGAs, FPGASpec{Name: fmt.Sprintf("fpga-%02d", i)})
	}
	return t
}

// CrossRackTopology builds a two-rack cluster with an asymmetric
// interconnect: rack A holds nX86 entry/scheduler hosts and nARMNear
// ARM servers joined by DefaultNet-class 1 Gbps Ethernet; rack B holds
// nARMFar ARM servers reachable from rack A only over the given cross
// model (every A↔B pair gets a LinkSpec override). The nFPGA cards
// stay PCIe-attached to the hosts, as in every other topology. This is
// the canonical testbed for link-aware placement: the far ARM capacity
// is real, but a policy that ignores the slow hop pays its transfer
// cost on every second migration.
//
// Node names are deterministic (x86-00, arma-00, armb-00, fpga-00, …)
// so experiment output is stable.
func CrossRackTopology(name string, nX86, nARMNear, nARMFar, nFPGA int, cross popcorn.NetModel) Topology {
	t := Topology{Name: name, DefaultNet: popcorn.EthernetGbps1()}
	var rackA, rackB []string
	for i := 0; i < nX86; i++ {
		n := fmt.Sprintf("x86-%02d", i)
		t.Nodes = append(t.Nodes, NodeSpec{Name: n, Arch: isa.X86_64, Cores: 6})
		rackA = append(rackA, n)
	}
	for i := 0; i < nARMNear; i++ {
		n := fmt.Sprintf("arma-%02d", i)
		t.Nodes = append(t.Nodes, NodeSpec{Name: n, Arch: isa.ARM64, Cores: 96})
		rackA = append(rackA, n)
	}
	for i := 0; i < nARMFar; i++ {
		n := fmt.Sprintf("armb-%02d", i)
		t.Nodes = append(t.Nodes, NodeSpec{Name: n, Arch: isa.ARM64, Cores: 96})
		rackB = append(rackB, n)
	}
	for i := 0; i < nFPGA; i++ {
		t.FPGAs = append(t.FPGAs, FPGASpec{Name: fmt.Sprintf("fpga-%02d", i)})
	}
	for _, a := range rackA {
		for _, b := range rackB {
			t.Links = append(t.Links, LinkSpec{A: a, B: b, Net: cross})
		}
	}
	return t
}

// NetBetween resolves the interconnect model between two named nodes:
// the LinkSpec override when one exists (either orientation),
// DefaultNet otherwise. It answers the spec-level transfer-cost
// question — "what would moving bytes between these nodes cost" —
// without materialising the topology; Cluster.TransferEstimate is the
// materialised equivalent.
func (t Topology) NetBetween(a, b string) popcorn.NetModel {
	for _, l := range t.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l.Net
		}
	}
	return t.DefaultNet
}

// Validate checks the structural invariants the scheduler and the
// experiment engine assume.
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology %q has no nodes", t.Name)
	}
	names := make(map[string]bool, len(t.Nodes))
	hasX86 := false
	for _, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: topology %q has an unnamed node", t.Name)
		}
		if names[n.Name] {
			return fmt.Errorf("cluster: topology %q: duplicate node %q", t.Name, n.Name)
		}
		names[n.Name] = true
		if n.Cores <= 0 {
			return fmt.Errorf("cluster: topology %q: node %q has %d cores", t.Name, n.Name, n.Cores)
		}
		if n.Arch == isa.X86_64 {
			hasX86 = true
		}
	}
	if !hasX86 {
		return fmt.Errorf("cluster: topology %q has no x86 node to host the scheduler", t.Name)
	}
	fpgaNames := make(map[string]bool, len(t.FPGAs))
	for _, f := range t.FPGAs {
		if f.Name == "" {
			return fmt.Errorf("cluster: topology %q has an unnamed FPGA", t.Name)
		}
		if fpgaNames[f.Name] {
			return fmt.Errorf("cluster: topology %q: duplicate FPGA %q", t.Name, f.Name)
		}
		fpgaNames[f.Name] = true
	}
	for _, l := range t.Links {
		if !names[l.A] || !names[l.B] {
			return fmt.Errorf("cluster: topology %q: link %s-%s names an unknown node", t.Name, l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("cluster: topology %q: self-link on %s", t.Name, l.A)
		}
	}
	return nil
}

// CoresOfArch sums the core counts of every node of the given class.
func (t Topology) CoresOfArch(arch isa.Arch) int {
	total := 0
	for _, n := range t.Nodes {
		if n.Arch == arch {
			total += n.Cores
		}
	}
	return total
}

// TotalCPUCores sums all CPU cores across the topology.
func (t Topology) TotalCPUCores() int {
	total := 0
	for _, n := range t.Nodes {
		total += n.Cores
	}
	return total
}

// machine materialises a NodeSpec, filling in the default cost model
// for its architecture.
func (n NodeSpec) machine() (Machine, error) {
	cost := n.Cost
	if cost == nil {
		var err error
		cost, err = isa.CostModelFor(n.Arch)
		if err != nil {
			return Machine{}, fmt.Errorf("cluster: node %q: %w", n.Name, err)
		}
	}
	return Machine{Name: n.Name, Arch: n.Arch, Cores: n.Cores, Cost: cost}, nil
}
