// Package quantile provides a deterministic, merge-able streaming
// quantile sketch over int64 values — the Greenwald-Khanna (GK)
// summary ("Space-Efficient Online Computation of Quantile Summaries",
// SIGMOD 2001) with buffered batch insertion.
//
// The sketch answers rank queries with a guaranteed rank error: for a
// stream of n values, Quantile(q) returns a value of the stream whose
// rank is within ErrorBound()·n (+1) of ceil(q·n). Memory is
// O((1/ε)·log(εn)) tuples — independent of n for practical purposes —
// which is what lets a million-request serving cell report percentiles
// without retaining a per-request latency slice.
//
// Determinism is part of the contract: every operation is integer math
// plus one float64 multiply for the compression threshold, so a fixed
// insertion sequence yields a bit-identical sketch on every platform
// and GOMAXPROCS setting (the sketch itself is not goroutine-safe; the
// campaign layer shards one sketch per cell). Serialization (binary
// and JSON) captures the exact tuple state: a deserialized sketch
// answers every query identically to the original.
package quantile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"slices"
)

// DefaultEpsilon is the rank-error target the serving campaigns use:
// 0.1% of the stream, an order of magnitude inside the 1% differential
// tolerance the exactness tests pin.
const DefaultEpsilon = 0.001

// tuple is one GK summary entry: a stream value v covering g ranks,
// with delta bounding the uncertainty of its position — the value's
// true rank lies in [rmin, rmin+delta] where rmin is the running sum
// of g up to and including the tuple.
type tuple struct {
	v     int64
	g     int64
	delta int64
}

// Sketch is a GK quantile summary. The zero value is not usable; call
// New.
type Sketch struct {
	eps    float64
	n      int64
	tuples []tuple
	// buf batches pending inserts: Add is O(1) amortised because a
	// full buffer is sorted once and merged into the tuple list in a
	// single pass, instead of one binary-search-and-memmove per value.
	buf []int64
	// scratch is the spare tuple list flush and Merge build into; the
	// lists swap afterwards, so steady-state rebuilds allocate nothing.
	// K-way shard reduction folds dozens of sketches into one
	// accumulator, which without the swap paid one full-summary
	// allocation per merge.
	scratch []tuple
}

// New returns an empty sketch targeting the given rank-error fraction
// (0 < eps < 1). Smaller eps means more tuples: ~(1/2eps)·log2(2eps·n).
func New(eps float64) *Sketch {
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("quantile: epsilon %v out of (0,1)", eps))
	}
	cap := int(1 / (2 * eps))
	if cap < 16 {
		cap = 16
	}
	return &Sketch{eps: eps, buf: make([]int64, 0, cap)}
}

// ErrorBound reports the sketch's guaranteed rank-error fraction: the
// construction epsilon, or after a Merge the larger of the operands'
// bounds.
func (s *Sketch) ErrorBound() float64 { return s.eps }

// Count reports the number of values added.
func (s *Sketch) Count() int64 { return s.n + int64(len(s.buf)) }

// Add records one value.
func (s *Sketch) Add(v int64) {
	s.buf = append(s.buf, v)
	if len(s.buf) == cap(s.buf) {
		s.flush()
	}
}

// threshold is the GK compression bound floor(2·eps·n): adjacent
// tuples merge while their combined coverage stays under it, and a
// fresh interior insert takes delta = threshold-1.
func (s *Sketch) threshold() int64 {
	return int64(2 * s.eps * float64(s.n))
}

// flush drains the insert buffer into the tuple list: sort the batch,
// merge it into the (sorted) tuples in one pass, then compress. n and
// the insertion delta advance per element, so the result is identical
// to inserting the batch one value at a time.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	slices.Sort(s.buf)
	merged := s.grow(len(s.tuples) + len(s.buf))
	ti := 0
	for _, v := range s.buf {
		// Values equal to an existing tuple insert after it, matching
		// single-value GK insertion at the first greater tuple.
		for ti < len(s.tuples) && s.tuples[ti].v <= v {
			merged = append(merged, s.tuples[ti])
			ti++
		}
		s.n++
		var delta int64
		if len(merged) > 0 && ti < len(s.tuples) {
			// Interior insert; head and tail inserts keep delta 0 so
			// the summary's extremes stay exact.
			if delta = s.threshold() - 1; delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, tuple{v: v, g: 1, delta: delta})
	}
	merged = append(merged, s.tuples[ti:]...)
	s.scratch, s.tuples = s.tuples[:0], merged
	s.buf = s.buf[:0]
	s.compress()
}

// grow returns the scratch list, reallocated if it cannot hold want
// tuples, ready to be appended into and swapped with s.tuples.
func (s *Sketch) grow(want int) []tuple {
	if cap(s.scratch) < want {
		s.scratch = make([]tuple, 0, want)
	}
	return s.scratch[:0]
}

// compress merges adjacent tuples whose combined rank coverage stays
// within the GK bound, scanning right to left so a chain of light
// tuples collapses in one pass. The first and last tuples are kept:
// the summary always answers the exact minimum and maximum.
func (s *Sketch) compress() {
	t := s.threshold() - 1
	if t < 1 {
		return
	}
	out := s.tuples
	w := len(out) - 1
	for i := len(out) - 2; i >= 1; i-- {
		if out[i].g+out[w].g+out[w].delta <= t {
			out[w].g += out[i].g
		} else {
			w--
			out[w] = out[i]
		}
	}
	if w >= 1 {
		// out[0] survives compression unconditionally. Survivors are
		// copied to the front rather than resliced off it, so the
		// backing array keeps its full capacity for the scratch swap —
		// a suffix reslice here leaked front capacity and made every
		// Merge in a K-way fold reallocate.
		out[w-1] = out[0]
		s.tuples = out[:copy(out, out[w-1:])]
	}
}

// Quantile returns a stream value at quantile q in [0, 1], under the
// nearest-rank convention the serving reports use: the target rank is
// ceil(q·n) clamped to [1, n]. The returned value's true rank is
// within ErrorBound()·n (+1) of the target. An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) int64 {
	s.flush()
	if s.n == 0 {
		return 0
	}
	r := int64(math.Ceil(q * float64(s.n)))
	return s.QuantileAtRank(r)
}

// QuantileAtRank returns a stream value whose rank is within the error
// bound of rank r (1-based, clamped to [1, n]). It lets callers apply
// their own rank convention — the serving layer's nearest-rank
// percentile() uses ceil(pct·n/100).
func (s *Sketch) QuantileAtRank(r int64) int64 {
	s.flush()
	if s.n == 0 {
		return 0
	}
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	// The extremes are exact: the head and tail tuples are never
	// merged away, so rank 1 is the stream minimum and rank n the
	// maximum.
	if r == 1 {
		return s.tuples[0].v
	}
	if r == s.n {
		return s.tuples[len(s.tuples)-1].v
	}
	// Textbook GK query: return the predecessor of the first tuple
	// whose rmax overshoots r by more than the margin. The overshoot
	// index is nondecreasing in r, so quantile answers are monotone in
	// q by construction; the compression invariant max(g+delta) <=
	// 2·eps·n bounds the rank error by eps·n (+1 from the floor) on
	// both sides. The margin floors rather than ceils eps·n: with a
	// ceiled margin an exact summary (every tuple a singleton, as for
	// any stream shorter than 1/(2·eps)) would answer rank r+1 for
	// rank r — floored, exact summaries answer exactly.
	margin := int64(s.eps * float64(s.n))
	var rmin int64
	for i, t := range s.tuples {
		rmin += t.g
		if rmin+t.delta > r+margin {
			if i == 0 {
				return t.v
			}
			return s.tuples[i-1].v
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Merge folds other into s. The merged summary covers both streams
// and keeps the larger of the operands' error bounds: each side
// satisfies g+delta <= 2·eps·n over its own count, and the
// delta-inflation below adds at most the other side's local
// uncertainty, so every merged tuple satisfies the invariant over the
// combined count with eps = max — the bound does not decay however
// many shard sketches fold into one accumulator, which the 64-way
// merge property test pins. Merging in any order or association
// yields answers within the merged bound. other is flushed but
// otherwise unchanged.
func (s *Sketch) Merge(other *Sketch) {
	s.flush()
	other.flush()
	if other.n == 0 {
		return
	}
	s.eps = math.Max(s.eps, other.eps)
	if s.n == 0 {
		s.n = other.n
		s.tuples = append(s.tuples[:0], other.tuples...)
		return
	}
	// Merge-sort the tuple lists, inflating each emitted tuple's delta
	// by the other side's local rank uncertainty (the g+delta-1 of its
	// next unconsumed tuple): the other stream may hide that much mass
	// between this value and its merged successor. Without the
	// inflation the merged intervals understate rmax and queries
	// exceed the advertised bound — the failure mode SPARK-21184
	// documents for the naive concatenation merge.
	merged := s.grow(len(s.tuples) + len(other.tuples))
	i, j := 0, 0
	for i < len(s.tuples) && j < len(other.tuples) {
		var t, next tuple
		if s.tuples[i].v <= other.tuples[j].v {
			t, next = s.tuples[i], other.tuples[j]
			i++
		} else {
			t, next = other.tuples[j], s.tuples[i]
			j++
		}
		t.delta += next.g + next.delta - 1
		merged = append(merged, t)
	}
	merged = append(merged, s.tuples[i:]...)
	merged = append(merged, other.tuples[j:]...)
	s.scratch, s.tuples = s.tuples[:0], merged
	s.n += other.n
	s.compress()
}

// Reset empties the sketch for reuse, keeping its current error bound
// and the allocated tuple and buffer capacity — accumulators in merge
// loops reset instead of reallocating.
func (s *Sketch) Reset() {
	s.n = 0
	s.tuples = s.tuples[:0]
	s.buf = s.buf[:0]
}

// Merged folds the sketches into a fresh summary with error target
// eps, merging in argument order — the K-way reduction the sharded
// serving engine uses to combine per-shard latency sketches. The
// result's bound is max(eps, inputs' bounds); the inputs are flushed
// but otherwise unchanged.
func Merged(eps float64, sketches ...*Sketch) *Sketch {
	out := New(eps)
	for _, sk := range sketches {
		out.Merge(sk)
	}
	return out
}

// --- serialization ---------------------------------------------------

// binaryMagic versions the wire format.
var binaryMagic = [4]byte{'G', 'K', 'Q', '1'}

// MarshalBinary encodes the flushed sketch as a fixed little-endian
// layout: magic, eps bits, n, tuple count, then (v, g, delta) triples.
// The encoding is canonical — two sketches with identical state
// produce identical bytes.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	s.flush()
	var b bytes.Buffer
	b.Grow(4 + 8 + 8 + 8 + 24*len(s.tuples))
	b.Write(binaryMagic[:])
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		b.Write(scratch[:])
	}
	put(math.Float64bits(s.eps))
	put(uint64(s.n))
	put(uint64(len(s.tuples)))
	for _, t := range s.tuples {
		put(uint64(t.v))
		put(uint64(t.g))
		put(uint64(t.delta))
	}
	return b.Bytes(), nil
}

// UnmarshalBinary restores a sketch encoded by MarshalBinary. The
// restored sketch answers every query identically to the original.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 4+24 || !bytes.Equal(data[:4], binaryMagic[:]) {
		return fmt.Errorf("quantile: bad sketch header")
	}
	rest := data[4:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(rest[:8])
		rest = rest[8:]
		return v
	}
	eps := math.Float64frombits(get())
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("quantile: epsilon %v out of (0,1)", eps)
	}
	n := int64(get())
	count := int64(get())
	if n < 0 || count < 0 || count > n {
		return fmt.Errorf("quantile: corrupt counts n=%d tuples=%d", n, count)
	}
	if int64(len(rest)) != 24*count {
		return fmt.Errorf("quantile: body %d bytes, want %d", len(rest), 24*count)
	}
	tuples := make([]tuple, count)
	var covered int64
	prev := int64(math.MinInt64)
	for i := range tuples {
		v, g, delta := int64(get()), int64(get()), int64(get())
		if v < prev || g < 1 || delta < 0 {
			return fmt.Errorf("quantile: corrupt tuple %d (v=%d g=%d delta=%d)", i, v, g, delta)
		}
		covered += g
		prev = v
		tuples[i] = tuple{v: v, g: g, delta: delta}
	}
	if covered != n {
		return fmt.Errorf("quantile: tuples cover %d ranks, n=%d", covered, n)
	}
	*s = Sketch{eps: eps, n: n, tuples: tuples}
	s.buf = make([]int64, 0, New(eps).bufCap())
	return nil
}

// bufCap reports the insert-buffer capacity for the sketch's epsilon.
func (s *Sketch) bufCap() int { return cap(s.buf) }

// sketchJSON is the JSON wire form: tuples as [v, g, delta] triples.
type sketchJSON struct {
	Eps    float64    `json:"eps"`
	N      int64      `json:"n"`
	Tuples [][3]int64 `json:"tuples"`
}

// MarshalJSON encodes the flushed sketch; the output is canonical for
// a given state, so sketch-bearing reports stay byte-comparable.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	s.flush()
	out := sketchJSON{Eps: s.eps, N: s.n, Tuples: make([][3]int64, len(s.tuples))}
	for i, t := range s.tuples {
		out.Tuples[i] = [3]int64{t.v, t.g, t.delta}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a sketch from MarshalJSON output, applying
// the same structural validation as UnmarshalBinary.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var in sketchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if !(in.Eps > 0 && in.Eps < 1) {
		return fmt.Errorf("quantile: epsilon %v out of (0,1)", in.Eps)
	}
	var covered int64
	prev := int64(math.MinInt64)
	tuples := make([]tuple, len(in.Tuples))
	for i, t := range in.Tuples {
		if t[0] < prev || t[1] < 1 || t[2] < 0 {
			return fmt.Errorf("quantile: corrupt tuple %d %v", i, t)
		}
		covered += t[1]
		prev = t[0]
		tuples[i] = tuple{v: t[0], g: t[1], delta: t[2]}
	}
	if covered != in.N {
		return fmt.Errorf("quantile: tuples cover %d ranks, n=%d", covered, in.N)
	}
	*s = Sketch{eps: in.Eps, n: in.N, tuples: tuples}
	s.buf = make([]int64, 0, New(in.Eps).bufCap())
	return nil
}

// TupleCount reports the current summary size (after flushing pending
// inserts) — the memory the sketch actually holds, which the
// O(1)-memory campaign assertions bound.
func (s *Sketch) TupleCount() int {
	s.flush()
	return len(s.tuples)
}
