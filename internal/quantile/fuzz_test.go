package quantile

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzSketch drives the sketch with an arbitrary byte string decoded
// as an int64 value stream plus an epsilon selector, and checks the
// package's whole contract against an exact sorted reference: bounded
// rank error, quantile monotonicity in q, split-and-merge equivalence,
// and serialize→deserialize→Quantile identity. CI runs it as a short
// -fuzztime smoke next to the regular property tests; the seed corpus
// covers the adversarial stream shapes.
func FuzzSketch(f *testing.F) {
	seed := func(vals ...int64) []byte {
		b := make([]byte, 1+8*len(vals))
		b[0] = 1
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[1+8*i:], uint64(v))
		}
		return b
	}
	f.Add(seed(5, 4, 3, 2, 1))
	f.Add(seed(7, 7, 7, 7, 7, 7, 7, 7))
	f.Add(seed(1, 1<<60, 2, 1<<60, 3, 1<<60))
	f.Add(seed(math.MinInt64, math.MaxInt64, 0))
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		eps := []float64{0.1, 0.01, DefaultEpsilon}[int(data[0])%3]
		data = data[1:]
		var vals []int64
		for len(data) >= 8 && len(vals) < 1<<16 {
			vals = append(vals, int64(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		if len(vals) == 0 {
			return
		}
		whole := New(eps)
		left, right := New(eps), New(eps)
		for i, v := range vals {
			whole.Add(v)
			if i%2 == 0 {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(right)

		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		n := int64(len(sorted))
		check := func(s *Sketch, label string) {
			tol := int64(math.Ceil(s.ErrorBound()*float64(n))) + 2
			prev := int64(math.MinInt64)
			for q := 0.0; q <= 1.0; q += 0.05 {
				got := s.Quantile(q)
				if got < prev {
					t.Fatalf("%s: Quantile(%.2f)=%d below previous %d", label, q, got, prev)
				}
				prev = got
				r := int64(math.Ceil(q * float64(n)))
				if r < 1 {
					r = 1
				}
				if err := rankError(sorted, got, r); err > tol {
					t.Fatalf("%s: rank error %d at q=%.2f exceeds %d (eps=%v n=%d)",
						label, err, q, tol, s.ErrorBound(), n)
				}
			}
		}
		check(whole, "whole")
		check(left, "merged")

		bin, err := whole.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var restored Sketch
		if err := restored.UnmarshalBinary(bin); err != nil {
			t.Fatalf("round-trip rejected own output: %v", err)
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if restored.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("round-trip Quantile(%.2f) diverged", q)
			}
		}
	})
}
