package quantile

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankError measures how far the reported value x sits from target
// rank r (1-based) in the exact sorted reference, in ranks. A value
// occupying ranks [lo+1, hi] (lo values strictly below, hi values at
// or below) has error 0 when r falls inside that interval.
func rankError(sorted []int64, x int64, r int64) int64 {
	lo := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x }))
	hi := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > x }))
	switch {
	case r <= lo:
		return lo + 1 - r
	case r > hi:
		return r - hi
	}
	return 0
}

// checkStream verifies the rank-error guarantee of a sketch against
// the exact sorted stream for a probe grid of quantiles, returning the
// worst offender.
func checkStream(t *testing.T, s *Sketch, values []int64, label string) {
	t.Helper()
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := int64(len(sorted))
	if s.Count() != n {
		t.Fatalf("%s: count = %d, want %d", label, s.Count(), n)
	}
	// +2 absorbs the ceil rounding on both the target rank and the
	// margin; the guarantee itself is eps·n.
	tol := int64(math.Ceil(s.ErrorBound()*float64(n))) + 2
	worstQ, worst := 0.0, int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		r := int64(math.Ceil(q * float64(n)))
		if r < 1 {
			r = 1
		}
		got := s.Quantile(q)
		if err := rankError(sorted, got, r); err > worst {
			worst, worstQ = err, q
		}
	}
	if worst > tol {
		t.Fatalf("%s: worst rank error %d at q=%.2f exceeds tolerance %d (eps=%v, n=%d)",
			label, worst, worstQ, tol, s.ErrorBound(), n)
	}
}

// streams are the reference inputs the rank-error property must hold
// on: random, pre-sorted both ways, constant, and bimodal — the
// adversarial shapes that break naive summaries.
func streams(n int) map[string][]int64 {
	rng := rand.New(rand.NewSource(42))
	random := make([]int64, n)
	for i := range random {
		random[i] = rng.Int63n(1 << 40)
	}
	asc := append([]int64(nil), random...)
	sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
	desc := make([]int64, n)
	for i := range desc {
		desc[i] = asc[n-1-i]
	}
	constant := make([]int64, n)
	for i := range constant {
		constant[i] = 7777
	}
	bimodal := make([]int64, n)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = 10 + rng.Int63n(5)
		} else {
			bimodal[i] = 1_000_000_000 + rng.Int63n(5)
		}
	}
	return map[string][]int64{
		"random": random, "sorted-asc": asc, "sorted-desc": desc,
		"constant": constant, "bimodal": bimodal,
	}
}

func TestRankErrorBoundedAcrossStreams(t *testing.T) {
	for _, n := range []int{1, 2, 10, 1000, 50000} {
		for _, eps := range []float64{0.01, DefaultEpsilon} {
			for name, vals := range streams(n) {
				s := New(eps)
				for _, v := range vals {
					s.Add(v)
				}
				checkStream(t, s, vals, name)
			}
		}
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	for name, vals := range streams(10000) {
		s := New(0.005)
		for _, v := range vals {
			s.Add(v)
		}
		prev := int64(math.MinInt64)
		for q := 0.0; q <= 1.0; q += 0.005 {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("%s: Quantile(%.3f) = %d below previous %d", name, q, got, prev)
			}
			prev = got
		}
	}
}

func TestQuantileExtremesExact(t *testing.T) {
	vals := streams(20000)["random"]
	s := New(DefaultEpsilon)
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		s.Add(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// GK keeps the head and tail tuples unmerged with delta 0, so the
	// stream extremes are exact, not approximate.
	if got := s.Quantile(0); got != lo {
		t.Fatalf("Quantile(0) = %d, want exact min %d", got, lo)
	}
	if got := s.Quantile(1); got != hi {
		t.Fatalf("Quantile(1) = %d, want exact max %d", got, hi)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	s := New(0.01)
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	if s.Count() != 0 {
		t.Fatalf("empty Count = %d", s.Count())
	}
	s.Add(99)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 99 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 99", q, got)
		}
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	vals := streams(40000)["random"]
	const parts = 8
	build := func() []*Sketch {
		out := make([]*Sketch, parts)
		for i := range out {
			out[i] = New(0.002)
		}
		for i, v := range vals {
			out[i%parts].Add(v)
		}
		return out
	}
	// Three merge shapes: left fold, right fold, and a shuffled pairing
	// tree. Each must answer within its own tracked error bound.
	leftFold := func() *Sketch {
		ss := build()
		acc := ss[0]
		for _, s := range ss[1:] {
			acc.Merge(s)
		}
		return acc
	}
	rightFold := func() *Sketch {
		ss := build()
		acc := ss[parts-1]
		for i := parts - 2; i >= 0; i-- {
			acc.Merge(ss[i])
		}
		return acc
	}
	shuffled := func() *Sketch {
		ss := build()
		rng := rand.New(rand.NewSource(7))
		rng.Shuffle(len(ss), func(i, j int) { ss[i], ss[j] = ss[j], ss[i] })
		for len(ss) > 1 {
			var next []*Sketch
			for i := 0; i+1 < len(ss); i += 2 {
				ss[i].Merge(ss[i+1])
				next = append(next, ss[i])
			}
			if len(ss)%2 == 1 {
				next = append(next, ss[len(ss)-1])
			}
			ss = next
		}
		return ss[0]
	}
	for name, merge := range map[string]func() *Sketch{
		"left-fold": leftFold, "right-fold": rightFold, "pair-tree": shuffled,
	} {
		checkStream(t, merge(), vals, name)
	}
}

// TestMerge64WayRankError pins the K-way reduction the sharded
// serving engine depends on: folding 64 per-shard sketches into one
// accumulator must keep the advertised bound at the shard epsilon
// (not 64·eps — Merge keeps eps = max because delta inflation
// preserves g+delta <= 2·eps·n over the combined count), and the
// answers must stay within eps·n+1 ranks of the exact merged stream.
func TestMerge64WayRankError(t *testing.T) {
	const shards = 64
	for name, vals := range streams(64_000) {
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = New(DefaultEpsilon)
		}
		for i, v := range vals {
			parts[i%shards].Add(v)
		}
		s := Merged(DefaultEpsilon, parts...)
		if got := s.ErrorBound(); got != DefaultEpsilon {
			t.Fatalf("%s: 64-way merge grew ErrorBound to %v, want %v", name, got, DefaultEpsilon)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		n := int64(len(sorted))
		if s.Count() != n {
			t.Fatalf("%s: count = %d, want %d", name, s.Count(), n)
		}
		tol := int64(DefaultEpsilon*float64(n)) + 1
		for q := 0.0; q <= 1.0; q += 0.005 {
			r := int64(math.Ceil(q * float64(n)))
			if r < 1 {
				r = 1
			}
			got := s.Quantile(q)
			if err := rankError(sorted, got, r); err > tol {
				t.Fatalf("%s: rank error %d at q=%.3f exceeds eps·n+1 = %d", name, err, q, tol)
			}
		}
	}
}

func TestMergeEmptySides(t *testing.T) {
	vals := streams(1000)["random"]
	full := New(0.01)
	for _, v := range vals {
		full.Add(v)
	}
	intoEmpty := New(0.01)
	intoEmpty.Merge(full)
	checkStream(t, intoEmpty, vals, "merge-into-empty")
	full.Merge(New(0.01))
	checkStream(t, full, vals, "merge-with-empty")
}

func TestSerializeRoundTripIdentical(t *testing.T) {
	for name, vals := range streams(30000) {
		s := New(DefaultEpsilon)
		for _, v := range vals {
			s.Add(v)
		}
		bin, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("%s: marshal binary: %v", name, err)
		}
		var fromBin Sketch
		if err := fromBin.UnmarshalBinary(bin); err != nil {
			t.Fatalf("%s: unmarshal binary: %v", name, err)
		}
		js, err := s.MarshalJSON()
		if err != nil {
			t.Fatalf("%s: marshal json: %v", name, err)
		}
		var fromJS Sketch
		if err := fromJS.UnmarshalJSON(js); err != nil {
			t.Fatalf("%s: unmarshal json: %v", name, err)
		}
		for q := 0.0; q <= 1.0; q += 0.01 {
			want := s.Quantile(q)
			if got := fromBin.Quantile(q); got != want {
				t.Fatalf("%s: binary round-trip Quantile(%.2f) = %d, want %d", name, q, got, want)
			}
			if got := fromJS.Quantile(q); got != want {
				t.Fatalf("%s: json round-trip Quantile(%.2f) = %d, want %d", name, q, got, want)
			}
		}
		// The encoding is canonical: re-marshalling the restored sketch
		// reproduces the exact bytes.
		bin2, _ := fromBin.MarshalBinary()
		if !bytes.Equal(bin, bin2) {
			t.Fatalf("%s: binary encoding not canonical", name)
		}
		js2, _ := fromJS.MarshalJSON()
		if !bytes.Equal(js, js2) {
			t.Fatalf("%s: json encoding not canonical", name)
		}
	}
}

func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	s := New(0.01)
	for i := int64(0); i < 100; i++ {
		s.Add(i)
	}
	good, _ := s.MarshalBinary()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"truncated":   good[:len(good)-8],
		"tuple count": func() []byte { b := append([]byte(nil), good...); b[20] = 0xFF; return b }(),
	}
	for name, data := range cases {
		var out Sketch
		if err := out.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
	var out Sketch
	if err := out.UnmarshalJSON([]byte(`{"eps":0.5,"n":3,"tuples":[[1,1,0],[0,1,0],[2,1,0]]}`)); err == nil {
		t.Error("unsorted JSON tuples accepted")
	}
	if err := out.UnmarshalJSON([]byte(`{"eps":2,"n":0,"tuples":[]}`)); err == nil {
		t.Error("out-of-range epsilon accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	vals := streams(20000)["random"]
	run := func() []byte {
		s := New(DefaultEpsilon)
		for _, v := range vals {
			s.Add(v)
		}
		b, _ := s.MarshalBinary()
		return b
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same insertion sequence produced different sketch state")
	}
}

func TestTupleCountSublinear(t *testing.T) {
	s := New(DefaultEpsilon)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000_000; i++ {
		s.Add(rng.Int63n(1 << 50))
	}
	// 1M values at eps=0.001: the summary must stay thousands of
	// tuples, not grow with n — the O(1)-memory claim of the serving
	// campaigns. The theoretical bound is (1/2eps)·log2(2eps·n) ≈ 5.5k.
	if got := s.TupleCount(); got > 20000 {
		t.Fatalf("1M inserts left %d tuples; summary is not sublinear", got)
	}
}
