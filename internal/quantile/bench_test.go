package quantile

import (
	"math/rand"
	"testing"
)

// BenchmarkQuantileAdd measures the amortized per-sample insertion
// cost at the default epsilon — the hot path every sketch-mode serving
// request takes once. Most inserts land in the sort buffer; the
// periodic flush+compress is amortized across the buffer size.
func BenchmarkQuantileAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = rng.Int63()
	}
	s := New(DefaultEpsilon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&(1<<16-1)])
	}
	b.ReportMetric(float64(s.TupleCount()), "tuples")
}

// BenchmarkQuantileQuery measures a percentile query against a sketch
// holding a million samples.
func BenchmarkQuantileQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := New(DefaultEpsilon)
	for i := 0; i < 1_000_000; i++ {
		s.Add(rng.Int63())
	}
	s.Quantile(0.5) // flush outside the timed loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(0.99)
	}
}

// BenchmarkQuantileMerge measures merging two 100k-sample sketches.
func BenchmarkQuantileMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	mk := func() *Sketch {
		s := New(DefaultEpsilon)
		for i := 0; i < 100_000; i++ {
			s.Add(rng.Int63())
		}
		return s
	}
	left, right := mk(), mk()
	cp := New(DefaultEpsilon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Reset()
		cp.Merge(left)
		cp.Merge(right)
	}
}

// BenchmarkQuantileMergeK measures the 64-way fold the sharded serving
// reducer performs: 64 per-shard sketches of ~16k samples each merged
// into one accumulator. The scratch-swap in Merge keeps steady-state
// allocations near zero however many shards fold in.
func BenchmarkQuantileMergeK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const shards = 64
	parts := make([]*Sketch, shards)
	for i := range parts {
		parts[i] = New(DefaultEpsilon)
		for j := 0; j < 16_384; j++ {
			parts[i].Add(rng.Int63())
		}
		parts[i].TupleCount() // flush outside the timed loop
	}
	acc := New(DefaultEpsilon)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Reset()
		for _, p := range parts {
			acc.Merge(p)
		}
	}
}
