// Package faults is the deterministic fault-injection subsystem: it
// turns a declarative fault specification — node crashes and
// recoveries, FPGA device failures, link degradation and partitions,
// maintenance drains — into a concrete timeline of events the
// experiment engine schedules on the discrete-event simulator.
//
// Everything is a pure function of (spec, seed, horizon): explicit
// events pass through verbatim, and stochastic churn generators expand
// through a seeded RNG in deterministic order, so a campaign cell with
// a fault spec stays byte-reproducible and GOMAXPROCS-independent —
// the same contract every other randomized draw in the harness obeys.
//
// The package is deliberately topology-blind: targets are node and
// device names, link endpoints are node-name pairs, and the experiment
// platform resolves them (and rejects crashing the scheduler host) when
// it installs the timeline. Validation here is structural only.
//
// # Retry backoff schedule
//
// A disrupted request is re-placed with exponential backoff: attempt n
// (1-based) waits Backoff() << (n-1) before re-entering the killed
// phase on a freshly chosen entry node, so with the defaults the
// schedule is 10ms, 20ms, 40ms, … The per-request budget is Retries()
// attempts, clamped to MaxRetryCap regardless of how large the spec
// sets max_retries — an unbounded budget would let a full-outage
// window generate unbounded retry storms (and push the shift into
// 63-bit overflow, wrapping the delay to zero). The engine also caps
// each individual delay at an absolute bound (10s), so late attempts
// poll the recovering fleet instead of waiting minutes. A request
// that exhausts the budget is lost and counted in both requests_lost
// and retries_exhausted.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Duration is a time.Duration that serializes as its human-readable
// string form ("60s", "1m30s"). Bare JSON numbers are accepted as
// seconds on input. (exper.Duration aliases this type, so campaign
// specs and fault specs share one wire format.)
type Duration time.Duration

// String implements fmt.Stringer.
func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON emits the time.ParseDuration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or a number of seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("exper: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("exper: duration must be a string like \"60s\" or a number of seconds, got %s", b)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// Kind names one fault-event type.
type Kind string

// Fault-event kinds. Node events target CPU nodes by topology name;
// FPGA events target cards by topology name; link events target the
// unordered node pair (A, B).
const (
	// NodeDown crashes a node: resident work is killed (and re-placed
	// through the scheduler with bounded retry), and the node stops
	// accepting placements until NodeUp.
	NodeDown Kind = "node-down"
	// NodeUp recovers a crashed node.
	NodeUp Kind = "node-up"
	// NodeDrain starts a maintenance drain: in-flight work finishes,
	// but the node stops accepting new placements until NodeUndrain.
	NodeDrain Kind = "node-drain"
	// NodeUndrain ends a maintenance drain.
	NodeUndrain Kind = "node-undrain"
	// FPGADown fails an accelerator card: in-flight invocations are
	// lost (the affected kernels degrade to CPU execution) and the
	// card leaves the scheduler's fleet until FPGAUp. A recovered card
	// reloads its last configuration from flash, as real Alveo cards
	// do on power-up.
	FPGADown Kind = "fpga-down"
	// FPGAUp recovers a failed card.
	FPGAUp Kind = "fpga-up"
	// LinkDegrade multiplies the pair link's transfer times by Factor
	// (>1 is slower) until LinkRestore.
	LinkDegrade Kind = "link-degrade"
	// LinkPartition makes the pair unreachable: in-flight transfers
	// are killed and ARM placement across the pair is excluded until
	// LinkRestore.
	LinkPartition Kind = "link-partition"
	// LinkRestore clears any degradation or partition on the pair.
	LinkRestore Kind = "link-restore"
)

// Event is one scheduled fault: at virtual time At, Kind happens to the
// named target.
type Event struct {
	At   Duration `json:"at"`
	Kind Kind     `json:"kind"`
	// Node names the target of node-class events.
	Node string `json:"node,omitempty"`
	// FPGA names the target card of fpga-class events (topology card
	// name, e.g. "fpga-01" or "alveo-u50").
	FPGA string `json:"fpga,omitempty"`
	// A and B name the endpoints of link-class events.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Factor is the link-degrade transfer-time multiplier (>= 1).
	Factor float64 `json:"factor,omitempty"`
}

// Churn is a stochastic up/down generator: each target alternates
// exponentially distributed up phases (mean MTBF) and down phases
// (mean MTTR) over the horizon, seeded from the cell seed.
type Churn struct {
	// Kind selects the target class: "node" or "fpga".
	Kind string `json:"kind"`
	// Targets lists the node or card names the churn applies to.
	Targets []string `json:"targets"`
	// MTBF is the mean up time before a failure (exponential).
	MTBF Duration `json:"mtbf"`
	// MTTR is the mean down time before recovery (exponential).
	MTTR Duration `json:"mttr"`
	// Drain turns node churn into graceful maintenance windows
	// (drain/undrain) instead of crashes.
	Drain bool `json:"drain,omitempty"`
}

// Spec is the declarative fault plan of one campaign cell: explicit
// events plus stochastic churn, with the retry budget governing how
// disrupted requests are re-placed. The zero value (and an Empty spec)
// injects nothing, and the experiment engine guarantees a run under an
// empty spec is byte-identical to one with no spec at all.
type Spec struct {
	// Events lists explicit scheduled faults.
	Events []Event `json:"events,omitempty"`
	// Churn lists stochastic up/down generators, expanded
	// deterministically from the cell seed.
	Churn []Churn `json:"churn,omitempty"`
	// MaxRetries bounds the re-placement attempts of one disrupted
	// request: 0 selects the default (3), negative disables retries
	// (the first disruption loses the request).
	MaxRetries int `json:"max_retries,omitempty"`
	// RetryBackoff is the base of the exponential retry backoff
	// (attempt n waits base << (n-1)); 0 selects the default (10ms).
	RetryBackoff Duration `json:"retry_backoff,omitempty"`
}

// Retry defaults.
const (
	// DefaultMaxRetries is the re-placement budget when
	// Spec.MaxRetries is 0.
	DefaultMaxRetries = 3
	// DefaultRetryBackoff is the backoff base when Spec.RetryBackoff
	// is 0.
	DefaultRetryBackoff = 10 * time.Millisecond
	// MaxRetryCap is the hard ceiling on the per-request retry budget:
	// Retries() clamps any larger max_retries here, bounding the total
	// re-placement work one disrupted request can generate during a
	// full-outage window (see the package doc's backoff schedule).
	MaxRetryCap = 16
)

// Retries resolves the effective retry budget, clamped to MaxRetryCap.
func (s *Spec) Retries() int {
	switch {
	case s == nil || s.MaxRetries == 0:
		return DefaultMaxRetries
	case s.MaxRetries < 0:
		return 0
	case s.MaxRetries > MaxRetryCap:
		return MaxRetryCap
	}
	return s.MaxRetries
}

// Backoff resolves the effective backoff base.
func (s *Spec) Backoff() time.Duration {
	if s == nil || s.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return time.Duration(s.RetryBackoff)
}

// Empty reports whether the spec injects nothing. An empty spec is the
// declarative no-op: the experiment engine skips fault machinery
// entirely, keeping output byte-identical to a run with no spec.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Events) == 0 && len(s.Churn) == 0)
}

// pairString renders a link pair for error messages.
func pairString(a, b string) string { return a + "-" + b }

// Validate checks the spec's structural invariants: known kinds, the
// per-kind target fields set (and only those), non-negative times,
// sane factors and churn means. Name resolution against a topology
// happens when the experiment platform installs the timeline.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	for i, c := range s.Churn {
		if err := c.validate(); err != nil {
			return fmt.Errorf("faults: churn %d: %w", i, err)
		}
	}
	return nil
}

// validate checks one explicit event.
func (ev Event) validate() error {
	if ev.At < 0 {
		return fmt.Errorf("negative time %v", time.Duration(ev.At))
	}
	needNode, needFPGA, needLink := false, false, false
	switch ev.Kind {
	case NodeDown, NodeUp, NodeDrain, NodeUndrain:
		needNode = true
	case FPGADown, FPGAUp:
		needFPGA = true
	case LinkDegrade, LinkPartition, LinkRestore:
		needLink = true
	case "":
		return fmt.Errorf("event has no kind")
	default:
		return fmt.Errorf("unknown kind %q", ev.Kind)
	}
	if needNode != (ev.Node != "") {
		if needNode {
			return fmt.Errorf("%s needs a node", ev.Kind)
		}
		return fmt.Errorf("%s does not take a node", ev.Kind)
	}
	if needFPGA != (ev.FPGA != "") {
		if needFPGA {
			return fmt.Errorf("%s needs an fpga", ev.Kind)
		}
		return fmt.Errorf("%s does not take an fpga", ev.Kind)
	}
	if needLink != (ev.A != "" && ev.B != "") {
		if needLink {
			return fmt.Errorf("%s needs link endpoints a and b", ev.Kind)
		}
		return fmt.Errorf("%s does not take link endpoints", ev.Kind)
	}
	if needLink && ev.A == ev.B {
		return fmt.Errorf("%s: self-link %s", ev.Kind, pairString(ev.A, ev.B))
	}
	if ev.Kind == LinkDegrade {
		if ev.Factor < 1 {
			return fmt.Errorf("link-degrade factor %v must be >= 1", ev.Factor)
		}
	} else if ev.Factor != 0 {
		return fmt.Errorf("%s does not take a factor", ev.Kind)
	}
	return nil
}

// validate checks one churn generator.
func (c Churn) validate() error {
	switch c.Kind {
	case "node":
	case "fpga":
		if c.Drain {
			return fmt.Errorf("fpga churn does not take drain")
		}
	case "":
		return fmt.Errorf("churn has no kind")
	default:
		return fmt.Errorf("unknown churn kind %q (want node or fpga)", c.Kind)
	}
	if len(c.Targets) == 0 {
		return fmt.Errorf("churn has no targets")
	}
	for _, t := range c.Targets {
		if t == "" {
			return fmt.Errorf("churn has an empty target name")
		}
	}
	if c.MTBF <= 0 {
		return fmt.Errorf("non-positive mtbf %v", time.Duration(c.MTBF))
	}
	if c.MTTR <= 0 {
		return fmt.Errorf("non-positive mttr %v", time.Duration(c.MTTR))
	}
	return nil
}

// downUp returns the event kinds one churn generator alternates.
func (c Churn) downUp() (down, up Kind) {
	if c.Kind == "fpga" {
		return FPGADown, FPGAUp
	}
	if c.Drain {
		return NodeDrain, NodeUndrain
	}
	return NodeDown, NodeUp
}

// churnEvent builds one generated event for a churn target.
func (c Churn) churnEvent(kind Kind, target string, at time.Duration) Event {
	ev := Event{At: Duration(at), Kind: kind}
	if c.Kind == "fpga" {
		ev.FPGA = target
	} else {
		ev.Node = target
	}
	return ev
}

// Timeline expands the spec into the concrete event sequence of one
// run: explicit events verbatim, plus each churn target's alternating
// exponential up/down phases drawn from a single RNG seeded with seed
// and consumed in (churn index, target index) order. Events past the
// horizon are dropped, and a down phase that ends past the horizon
// still emits its down event (the target simply never recovers within
// the run). The result is stably sorted by time, explicit events
// first among equals, so it is a pure function of (spec, seed,
// horizon) — the determinism contract campaign cells rely on.
func (s *Spec) Timeline(seed int64, horizon time.Duration) ([]Event, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	var out []Event
	for _, ev := range s.Events {
		if time.Duration(ev.At) >= horizon {
			continue
		}
		out = append(out, ev)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eedfa01))
	for _, c := range s.Churn {
		down, up := c.downUp()
		for _, target := range c.Targets {
			t := time.Duration(0)
			for {
				t += time.Duration(rng.ExpFloat64() * float64(time.Duration(c.MTBF)))
				if t >= horizon {
					break
				}
				out = append(out, c.churnEvent(down, target, t))
				t += time.Duration(rng.ExpFloat64() * float64(time.Duration(c.MTTR)))
				if t >= horizon {
					break
				}
				out = append(out, c.churnEvent(up, target, t))
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}
