package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sec(n int) Duration { return Duration(time.Duration(n) * time.Second) }

func TestSpecEmpty(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Empty() {
		t.Error("nil spec not empty")
	}
	if !(&Spec{MaxRetries: 5}).Empty() {
		t.Error("spec with only retry knobs not empty")
	}
	if (&Spec{Events: []Event{{At: 0, Kind: NodeDown, Node: "n"}}}).Empty() {
		t.Error("spec with events reported empty")
	}
	if (&Spec{Churn: []Churn{{Kind: "node", Targets: []string{"n"}, MTBF: sec(1), MTTR: sec(1)}}}).Empty() {
		t.Error("spec with churn reported empty")
	}
}

func TestRetryDefaults(t *testing.T) {
	var nilSpec *Spec
	if got := nilSpec.Retries(); got != DefaultMaxRetries {
		t.Errorf("nil retries = %d, want %d", got, DefaultMaxRetries)
	}
	if got := (&Spec{}).Retries(); got != DefaultMaxRetries {
		t.Errorf("zero retries = %d, want %d", got, DefaultMaxRetries)
	}
	if got := (&Spec{MaxRetries: -1}).Retries(); got != 0 {
		t.Errorf("negative retries = %d, want 0 (disabled)", got)
	}
	if got := (&Spec{MaxRetries: 7}).Retries(); got != 7 {
		t.Errorf("retries = %d, want 7", got)
	}
	if got := (&Spec{}).Backoff(); got != DefaultRetryBackoff {
		t.Errorf("backoff = %v, want %v", got, DefaultRetryBackoff)
	}
	if got := (&Spec{RetryBackoff: Duration(time.Second)}).Backoff(); got != time.Second {
		t.Errorf("backoff = %v, want 1s", got)
	}
}

func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Events: []Event{{Kind: NodeDown, Node: "n", At: -1}}}, "negative time"},
		{Spec{Events: []Event{{At: 0}}}, "no kind"},
		{Spec{Events: []Event{{Kind: "explode", Node: "n"}}}, "unknown kind"},
		{Spec{Events: []Event{{Kind: NodeDown}}}, "needs a node"},
		{Spec{Events: []Event{{Kind: FPGADown, Node: "n", FPGA: "f"}}}, "does not take a node"},
		{Spec{Events: []Event{{Kind: FPGAUp}}}, "needs an fpga"},
		{Spec{Events: []Event{{Kind: NodeUp, Node: "n", FPGA: "f"}}}, "does not take an fpga"},
		{Spec{Events: []Event{{Kind: LinkPartition, A: "a"}}}, "needs link endpoints"},
		{Spec{Events: []Event{{Kind: NodeDrain, Node: "n", A: "a", B: "b"}}}, "does not take link endpoints"},
		{Spec{Events: []Event{{Kind: LinkRestore, A: "a", B: "a"}}}, "self-link"},
		{Spec{Events: []Event{{Kind: LinkDegrade, A: "a", B: "b", Factor: 0.5}}}, "must be >= 1"},
		{Spec{Events: []Event{{Kind: NodeDown, Node: "n", Factor: 2}}}, "does not take a factor"},
		{Spec{Churn: []Churn{{Targets: []string{"n"}, MTBF: sec(1), MTTR: sec(1)}}}, "no kind"},
		{Spec{Churn: []Churn{{Kind: "link", Targets: []string{"n"}, MTBF: sec(1), MTTR: sec(1)}}}, "unknown churn kind"},
		{Spec{Churn: []Churn{{Kind: "node", MTBF: sec(1), MTTR: sec(1)}}}, "no targets"},
		{Spec{Churn: []Churn{{Kind: "node", Targets: []string{""}, MTBF: sec(1), MTTR: sec(1)}}}, "empty target"},
		{Spec{Churn: []Churn{{Kind: "node", Targets: []string{"n"}, MTTR: sec(1)}}}, "non-positive mtbf"},
		{Spec{Churn: []Churn{{Kind: "node", Targets: []string{"n"}, MTBF: sec(1)}}}, "non-positive mttr"},
		{Spec{Churn: []Churn{{Kind: "fpga", Targets: []string{"f"}, MTBF: sec(1), MTTR: sec(1), Drain: true}}}, "does not take drain"},
	}
	for i, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err = %v, want containing %q", i, err, tc.want)
		}
	}
}

func TestValidateAcceptsWellFormedSpec(t *testing.T) {
	s := Spec{
		Events: []Event{
			{At: sec(1), Kind: NodeDown, Node: "arm-01"},
			{At: sec(2), Kind: NodeUp, Node: "arm-01"},
			{At: sec(3), Kind: NodeDrain, Node: "x86-01"},
			{At: sec(4), Kind: NodeUndrain, Node: "x86-01"},
			{At: sec(5), Kind: FPGADown, FPGA: "fpga-00"},
			{At: sec(6), Kind: FPGAUp, FPGA: "fpga-00"},
			{At: sec(7), Kind: LinkDegrade, A: "x86-00", B: "arm-00", Factor: 2.5},
			{At: sec(8), Kind: LinkPartition, A: "x86-00", B: "arm-01"},
			{At: sec(9), Kind: LinkRestore, A: "x86-00", B: "arm-00"},
		},
		Churn: []Churn{
			{Kind: "node", Targets: []string{"arm-02"}, MTBF: sec(10), MTTR: sec(1)},
			{Kind: "node", Targets: []string{"x86-01"}, MTBF: sec(10), MTTR: sec(1), Drain: true},
			{Kind: "fpga", Targets: []string{"fpga-00"}, MTBF: sec(10), MTTR: sec(1)},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineExplicitEventsDropPastHorizon(t *testing.T) {
	s := &Spec{Events: []Event{
		{At: sec(1), Kind: NodeDown, Node: "n"},
		{At: sec(30), Kind: NodeUp, Node: "n"},
	}}
	tl, err := s.Timeline(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 1 || tl[0].Kind != NodeDown {
		t.Fatalf("timeline = %+v, want only the in-horizon event", tl)
	}
}

func TestTimelineDeterministicAndSeedSensitive(t *testing.T) {
	s := &Spec{
		Events: []Event{{At: sec(5), Kind: NodeDown, Node: "x86-01"}},
		Churn: []Churn{
			{Kind: "node", Targets: []string{"arm-00", "arm-01"}, MTBF: sec(8), MTTR: sec(2)},
			{Kind: "fpga", Targets: []string{"fpga-00"}, MTBF: sec(12), MTTR: sec(3)},
		},
	}
	a, err := s.Timeline(2021, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Timeline(2021, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed, horizon) produced different timelines")
	}
	c, err := s.Timeline(2022, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical churn expansions")
	}
	if len(a) < 3 {
		t.Fatalf("timeline suspiciously short: %d events", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("timeline not sorted at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
}

func TestTimelineChurnAlternatesPerTarget(t *testing.T) {
	s := &Spec{Churn: []Churn{
		{Kind: "node", Targets: []string{"arm-00"}, MTBF: sec(5), MTTR: sec(1)},
	}}
	tl, err := s.Timeline(7, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) == 0 {
		t.Fatal("churn generated no events over 5 minutes with MTBF 5s")
	}
	// Per-target events alternate down, up, down, up, ... in time order.
	want := NodeDown
	for i, ev := range tl {
		if ev.Node != "arm-00" {
			t.Fatalf("event %d targets %q", i, ev.Node)
		}
		if ev.Kind != want {
			t.Fatalf("event %d kind = %s, want %s", i, ev.Kind, want)
		}
		if want == NodeDown {
			want = NodeUp
		} else {
			want = NodeDown
		}
		if time.Duration(ev.At) >= 5*time.Minute {
			t.Fatalf("event %d past horizon: %v", i, ev.At)
		}
	}
}

func TestTimelineDrainChurnEmitsDrainEvents(t *testing.T) {
	s := &Spec{Churn: []Churn{
		{Kind: "node", Targets: []string{"x86-01"}, MTBF: sec(5), MTTR: sec(1), Drain: true},
	}}
	tl, err := s.Timeline(7, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range tl {
		if ev.Kind != NodeDrain && ev.Kind != NodeUndrain {
			t.Fatalf("event %d kind = %s, want drain/undrain only", i, ev.Kind)
		}
	}
	if len(tl) == 0 {
		t.Fatal("drain churn generated nothing")
	}
}

func TestTimelineValidatesFirst(t *testing.T) {
	s := &Spec{Events: []Event{{Kind: "bogus"}}}
	if _, err := s.Timeline(1, time.Minute); err == nil {
		t.Fatal("invalid spec expanded without error")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := &Spec{
		Events: []Event{
			{At: sec(5), Kind: NodeDown, Node: "arm-01"},
			{At: sec(7), Kind: LinkDegrade, A: "x86-00", B: "arm-00", Factor: 4},
		},
		Churn:        []Churn{{Kind: "node", Targets: []string{"arm-02"}, MTBF: sec(15), MTTR: sec(3), Drain: true}},
		MaxRetries:   2,
		RetryBackoff: Duration(10 * time.Millisecond),
	}
	js, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Fatalf("round trip diverged:\n%+v\n%+v", *s, back)
	}
	// Durations serialize human-readable.
	if !strings.Contains(string(js), `"at":"5s"`) {
		t.Fatalf("duration not serialized as string: %s", js)
	}
}
